//! The full trace-driven 64-tile CMP (§5.2, Table 2): per-tile core +
//! private L1 + shared L2 bank with a two-level directory MESI protocol,
//! memory controllers with a fixed-latency DRAM, all communicating through
//! the cycle-accurate NoC.
//!
//! Clock domains: cores, caches and DRAM run at the nominal core clock
//! (2.2 GHz); the network runs at its own configured clock (2.2 GHz
//! homogeneous, 2.07 GHz HeteroNoC) via a fractional-step accumulator.
//! All latencies reported by this module are in core cycles.

use std::collections::{HashMap, VecDeque};

use heteronoc_noc::config::NetworkConfig;
use heteronoc_noc::network::Network;
use heteronoc_noc::packet::PacketClass;
use heteronoc_noc::types::NodeId;
use heteronoc_traffic::trace::{MemOp, TraceSource};

use crate::cache::Cache;
use crate::core::{Core, CoreParams, Cycle, MemResult, TxnId};
use crate::memctrl::MemCtrl;
use crate::metrics::Welford;
use crate::msg::{Msg, MsgKind};

/// Cache hierarchy and memory parameters (defaults = Table 2).
#[derive(Clone, Copy, Debug)]
pub struct MemParams {
    /// Private L1 capacity in bytes (32 KB).
    pub l1_bytes: usize,
    /// L1 associativity (4).
    pub l1_ways: usize,
    /// Shared L2 bank capacity in bytes (1 MB per tile).
    pub l2_bytes: usize,
    /// L2 associativity (16).
    pub l2_ways: usize,
    /// Cache block size in bytes (128).
    pub block_bytes: usize,
    /// L1 hit latency in core cycles (2).
    pub l1_latency: Cycle,
    /// L2 bank access latency (6).
    pub bank_latency: Cycle,
    /// DRAM access latency (400).
    pub dram_latency: Cycle,
    /// Outstanding misses per core (16).
    pub l1_mshrs: usize,
    /// In-service requests per memory controller (16).
    pub mc_concurrent: usize,
}

impl Default for MemParams {
    fn default() -> Self {
        Self {
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l2_bytes: 1024 * 1024,
            l2_ways: 16,
            block_bytes: 128,
            l1_latency: 2,
            bank_latency: 6,
            dram_latency: 400,
            l1_mshrs: 16,
            mc_concurrent: 16,
        }
    }
}

/// Full system configuration.
#[derive(Debug)]
pub struct CmpConfig {
    /// Network configuration (from a `heteronoc::Layout` via
    /// `heteronoc::mesh_config`, or hand-built).
    pub net: NetworkConfig,
    /// Cache/memory parameters.
    pub mem: MemParams,
    /// Memory controller nodes (see [`crate::memctrl`]).
    pub mc_nodes: Vec<NodeId>,
    /// Core clock in GHz (2.2).
    pub core_clock_ghz: f64,
    /// Nodes whose traffic is expedited (§7 large cores); empty for
    /// symmetric CMPs.
    pub expedited_nodes: Vec<NodeId>,
}

impl CmpConfig {
    /// Table 2 defaults on the given network: 4 corner memory controllers,
    /// 2.2 GHz cores.
    pub fn paper_defaults(net: NetworkConfig) -> Self {
        Self {
            net,
            mem: MemParams::default(),
            mc_nodes: crate::memctrl::corners4(8, 8),
            core_clock_ghz: 2.2,
            expedited_nodes: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// L1
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum L1State {
    S,
    E,
    M,
}

#[derive(Clone, Debug)]
struct Mshr {
    txns: Vec<TxnId>,
    is_store: bool,
    start: Cycle,
}

#[derive(Debug)]
struct L1 {
    cache: Cache<L1State>,
    mshrs: HashMap<u64, Mshr>,
    done: HashMap<TxnId, Cycle>,
    limit: usize,
    hits: u64,
    misses: u64,
}

// ---------------------------------------------------------------------
// L2 bank + directory
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, Default)]
struct L2Line {
    dirty: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct DirEntry {
    sharers: u64,
    owner: Option<u16>,
}

impl DirEntry {
    fn is_idle(&self) -> bool {
        self.sharers == 0 && self.owner.is_none()
    }
}

#[derive(Clone, Copy, Debug)]
#[allow(clippy::enum_variant_names)] // protocol states read best as Wait*
enum Busy {
    /// Waiting for MemData from a controller.
    WaitMem { requester: u16, store: bool },
    /// Waiting for a writeback from the current owner.
    WaitWb { requester: u16, store: bool },
    /// Waiting for invalidation acks from sharers.
    WaitAcks { requester: u16, pending: u32 },
}

#[derive(Debug)]
struct Bank {
    cache: Cache<L2Line>,
    dir: HashMap<u64, DirEntry>,
    busy: HashMap<u64, Busy>,
    deferred: HashMap<u64, VecDeque<Msg>>,
    /// Messages delayed by the bank access latency: (ready, msg).
    inbox: VecDeque<(Cycle, Msg)>,
}

// ---------------------------------------------------------------------
// System
// ---------------------------------------------------------------------

/// System-level statistics.
#[derive(Clone, Debug, Default)]
pub struct CmpStats {
    /// Memory round trips (core request to data back at the core) for
    /// L2-miss transactions, in core cycles (Fig. 13).
    pub mem_round_trip: Welford,
    /// Request leg: core request generation to arrival at the memory
    /// controller, in core cycles (Fig. 13b).
    pub mem_request_leg: Welford,
    /// All L1-miss round trips (any data source).
    pub l1_miss_latency: Welford,
    /// Total L1 hits across cores.
    pub l1_hits: u64,
    /// Total L1 misses.
    pub l1_misses: u64,
    /// Memory reads issued.
    pub mem_reads: u64,
    /// Memory writebacks issued (dirty L2 evictions).
    pub mem_writes: u64,
}

/// The simulated CMP.
pub struct CmpSystem {
    mem: MemParams,
    core_clock_ghz: f64,
    net: Network,
    net_ratio: f64,
    net_acc: f64,
    cores: Vec<Core>,
    l1s: Vec<L1>,
    banks: Vec<Bank>,
    mcs: HashMap<usize, MemCtrl>,
    expedited: Vec<bool>,
    mc_list: Vec<usize>,
    now: Cycle,
    txn_counter: TxnId,
    /// (requester, block) -> request generation cycle (for Fig. 13 legs).
    req_start: HashMap<(u16, u64), Cycle>,
    stats: CmpStats,
}

impl std::fmt::Debug for CmpSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmpSystem")
            .field("now", &self.now)
            .field("cores", &self.cores.len())
            .finish_non_exhaustive()
    }
}

impl CmpSystem {
    /// Builds a CMP running one trace per core. `traces[i]` drives core `i`
    /// (pass empty traces for inactive cores).
    ///
    /// # Panics
    /// Panics if the trace/core-parameter counts do not match the network's
    /// node count or the network config is invalid.
    pub fn new(
        cfg: CmpConfig,
        core_params: Vec<CoreParams>,
        traces: Vec<Box<dyn TraceSource + Send>>,
    ) -> Self {
        let net = Network::new(cfg.net).expect("valid network config");
        let n = net.graph().num_nodes();
        assert_eq!(traces.len(), n, "one trace per node");
        assert_eq!(core_params.len(), n, "one core parameter set per node");
        let mem = cfg.mem;
        let l1s = (0..n)
            .map(|_| L1 {
                cache: Cache::with_geometry(mem.l1_bytes, mem.block_bytes, mem.l1_ways),
                mshrs: HashMap::new(),
                done: HashMap::new(),
                limit: mem.l1_mshrs,
                hits: 0,
                misses: 0,
            })
            .collect();
        let banks = (0..n)
            .map(|_| Bank {
                cache: Cache::with_geometry(mem.l2_bytes, mem.block_bytes, mem.l2_ways),
                dir: HashMap::new(),
                busy: HashMap::new(),
                deferred: HashMap::new(),
                inbox: VecDeque::new(),
            })
            .collect();
        let mcs = cfg
            .mc_nodes
            .iter()
            .map(|m| (m.index(), MemCtrl::new(mem.dram_latency, mem.mc_concurrent)))
            .collect();
        let mut expedited = vec![false; n];
        for e in &cfg.expedited_nodes {
            expedited[e.index()] = true;
        }
        let mut mc_list: Vec<usize> = cfg.mc_nodes.iter().map(|m| m.index()).collect();
        mc_list.sort_unstable();
        mc_list.dedup();
        let net_ratio = net.config().frequency_ghz / cfg.core_clock_ghz;
        let cores = core_params
            .into_iter()
            .zip(traces)
            .map(|(p, t)| Core::new(p, t))
            .collect();
        Self {
            mem,
            core_clock_ghz: cfg.core_clock_ghz,
            net,
            net_ratio,
            net_acc: 0.0,
            cores,
            l1s,
            banks,
            mcs,
            mc_list,
            expedited,
            now: 0,
            txn_counter: 0,
            req_start: HashMap::new(),
            stats: CmpStats::default(),
        }
    }

    /// Current core cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The underlying network (for latency/power statistics).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// System statistics.
    pub fn stats(&self) -> &CmpStats {
        &self.stats
    }

    /// Per-core IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(Core::ipc).collect()
    }

    /// Instructions committed per core.
    pub fn committed(&self) -> Vec<u64> {
        self.cores.iter().map(Core::committed).collect()
    }

    /// Core clock in GHz.
    pub fn core_clock_ghz(&self) -> f64 {
        self.core_clock_ghz
    }

    /// True when every core has drained its trace.
    pub fn finished(&self) -> bool {
        self.cores.iter().all(Core::finished)
            && self.net.in_flight() == 0
            && self
                .banks
                .iter()
                .all(|b| b.busy.is_empty() && b.inbox.is_empty())
    }

    /// Functionally pre-warms the caches and directory by replaying
    /// `warm` traces instantly (no timing, no network traffic) — the
    /// standard architecture-simulation warm-up so measurement starts from
    /// a steady state instead of being dominated by cold DRAM misses.
    ///
    /// Loads install the block shared (L1 S + sharer bit); stores install
    /// it modified (L1 M, other copies invalidated). L2 lines are installed
    /// clean at the home bank with normal LRU replacement.
    ///
    /// # Panics
    /// Panics if the trace count does not match the node count.
    pub fn prewarm(&mut self, warm: Vec<Box<dyn TraceSource + Send>>) {
        assert_eq!(warm.len(), self.l1s.len(), "one warm trace per node");
        let nbanks = self.banks.len() as u64;
        let block_bytes = self.mem.block_bytes as u64;
        for (c, mut t) in warm.into_iter().enumerate() {
            while let Some(rec) = t.next_record() {
                let block = rec.addr / block_bytes;
                let home = (block % nbanks) as usize;
                let store = rec.op == MemOp::Store;
                // L2 at home (clean; victims silently dropped along with
                // their directory state).
                let key = block / nbanks;
                if !self.banks[home].cache.contains(key) {
                    if let Some((vk, _)) = self.banks[home].cache.insert(key, L2Line::default()) {
                        let vb = vk * nbanks + home as u64;
                        self.banks[home].dir.remove(&vb);
                        for l1 in &mut self.l1s {
                            l1.cache.invalidate(vb);
                        }
                    }
                }
                let dir = self.banks[home].dir.entry(block).or_default();
                if store {
                    // Invalidate all other copies; this core becomes owner.
                    let prev_sharers = dir.sharers;
                    let prev_owner = dir.owner;
                    dir.sharers = 0;
                    dir.owner = Some(c as u16);
                    for s in 0..self.l1s.len() {
                        let had = prev_sharers & (1 << s) != 0 || prev_owner == Some(s as u16);
                        if had && s != c {
                            self.l1s[s].cache.invalidate(block);
                        }
                    }
                    set_l1_warm(&mut self.l1s[c], block, L1State::M);
                } else {
                    if let Some(owner) = dir.owner.take() {
                        // Downgrade the owner to a sharer.
                        if let Some(st) = self.l1s[owner as usize].cache.get_mut(block) {
                            *st = L1State::S;
                        }
                        dir.sharers |= 1 << owner;
                    }
                    dir.sharers |= 1 << c;
                    set_l1_warm(&mut self.l1s[c], block, L1State::S);
                }
            }
        }
        // Warming must not count as cache activity.
        for l1 in &mut self.l1s {
            l1.hits = 0;
            l1.misses = 0;
        }
    }

    /// Runs until every trace drains or `max_cycles` elapse. Returns the
    /// core cycles simulated. Network statistics are collected for the
    /// whole run.
    pub fn run(&mut self, max_cycles: Cycle) -> Cycle {
        self.net.set_measuring(true);
        while !self.finished() && self.now < max_cycles {
            self.tick();
        }
        self.finalize_stats();
        self.now
    }

    fn home_of(&self, block: u64) -> usize {
        (block % self.banks.len() as u64) as usize
    }

    /// L2 banks are indexed with the home-bank bits stripped, so bank sets
    /// are used uniformly (block = key * nbanks + bank).
    fn l2_key(&self, block: u64) -> u64 {
        block / self.banks.len() as u64
    }

    fn l2_block(&self, key: u64, bank: usize) -> u64 {
        key * self.banks.len() as u64 + bank as u64
    }

    fn mc_of(&self, block: u64) -> usize {
        // Deterministic: low-order block bits select the controller from
        // the sorted node list (§6).
        self.mc_list[(block % self.mc_list.len() as u64) as usize]
    }

    fn send(&mut self, src: usize, dst: usize, msg: Msg) {
        let class = if self.expedited[src] || self.expedited[dst] {
            PacketClass::Expedited
        } else if msg.kind.is_data() {
            PacketClass::Data
        } else {
            PacketClass::Control
        };
        self.net.enqueue(
            NodeId(src),
            NodeId(dst),
            msg.kind.packet_bits(),
            class,
            msg.encode(),
        );
    }

    /// Advances one core cycle.
    pub fn tick(&mut self) {
        let now = self.now;

        // 1. Network advances at its own clock; deliveries processed after
        //    every network step.
        self.net_acc += self.net_ratio;
        while self.net_acc >= 1.0 {
            self.net_acc -= 1.0;
            self.net.step();
            let delivered = self.net.drain_delivered();
            for d in delivered {
                let msg = Msg::decode(d.packet.tag);
                self.dispatch(d.packet.dst.index(), d.packet.src.index(), msg);
            }
        }

        // 2. Memory controllers complete DRAM accesses.
        let mc_nodes: Vec<usize> = self.mc_list.clone();
        for m in mc_nodes {
            let done = self.mcs.get_mut(&m).expect("mc exists").completed(now);
            for token in done {
                if token >> 63 == 1 {
                    continue; // completed write: no reply needed
                }
                // Read token encodes (home, block).
                let home = ((token >> 47) & 0xFFF) as usize;
                let block = token & ((1 << 47) - 1);
                self.send(
                    m,
                    home,
                    Msg::new(MsgKind::MemData, block, home).with_memory_flag(true),
                );
            }
        }

        // 3. Banks process delayed messages.
        for b in 0..self.banks.len() {
            loop {
                match self.banks[b].inbox.front() {
                    Some((ready, _)) if *ready <= now => {
                        let (_, msg) = self.banks[b].inbox.pop_front().expect("front");
                        self.bank_process(b, msg);
                    }
                    _ => break,
                }
            }
        }

        // 4. Cores issue.
        let mut all_issues: Vec<(usize, u64, bool)> = Vec::new();
        {
            let Self {
                cores,
                l1s,
                txn_counter,
                mem,
                ..
            } = self;
            let block_bytes = mem.block_bytes as u64;
            let l1_latency = mem.l1_latency;
            for (c, core) in cores.iter_mut().enumerate() {
                let l1 = &mut l1s[c];
                // `done` is read by one closure while the other mutates the
                // rest of the L1, so take it out for the duration.
                let done_map = std::mem::take(&mut l1.done);
                let mut issue_buf: Vec<(u64, bool)> = Vec::new();
                core.tick(
                    now,
                    |iss| {
                        let block = iss.record.addr / block_bytes;
                        let store = iss.record.op == MemOp::Store;
                        l1_issue(
                            l1,
                            block,
                            store,
                            now,
                            l1_latency,
                            txn_counter,
                            &mut issue_buf,
                        )
                    },
                    |t| done_map.get(&t).copied(),
                );
                l1.done = done_map;
                // Garbage-collect resolved txns the core has consumed.
                if l1.done.len() > 4 * 64 {
                    l1.done.retain(|_, cyc| *cyc + 10_000 > now);
                }
                for (block, store) in issue_buf {
                    all_issues.push((c, block, store));
                }
            }
        }
        for (c, block, store) in all_issues {
            let home = self.home_of(block);
            let kind = if store { MsgKind::GetM } else { MsgKind::GetS };
            self.req_start.insert((c as u16, block), now);
            self.send(c, home, Msg::new(kind, block, c));
        }

        self.now += 1;
    }

    /// Routes a delivered network message to the right component.
    fn dispatch(&mut self, dst: usize, src: usize, msg: Msg) {
        match msg.kind {
            // L1-bound messages.
            MsgKind::DataS | MsgKind::DataE | MsgKind::DataM => self.l1_fill(dst, msg),
            MsgKind::FwdS | MsgKind::FwdM | MsgKind::Inv => self.l1_probe(dst, msg),
            // Bank-bound messages go through the bank access latency.
            MsgKind::GetS
            | MsgKind::GetM
            | MsgKind::PutM
            | MsgKind::WbData
            | MsgKind::InvAck
            | MsgKind::MemData => {
                let _ = src;
                let ready = self.now + self.mem.bank_latency;
                self.banks[dst].inbox.push_back((ready, msg));
            }
            // Memory-controller messages.
            MsgKind::MemRead => {
                self.stats.mem_reads += 1;
                if let Some(start) = self.req_start.get(&(msg.requester, msg.block)) {
                    let leg = self.now - start;
                    self.stats.mem_request_leg.add(leg as f64);
                }
                let token = ((src as u64) << 47) | msg.block;
                self.mcs
                    .get_mut(&dst)
                    .expect("MemRead sent to a controller node")
                    .request(self.now, token);
            }
            MsgKind::MemWrite => {
                // Fire-and-forget writeback: consumes DRAM bandwidth. The
                // top token bit marks writes so no reply is generated.
                self.stats.mem_writes += 1;
                let token = (1u64 << 63) | msg.block;
                if let Some(mc) = self.mcs.get_mut(&dst) {
                    mc.request(self.now, token);
                }
            }
        }
    }

    /// Data reply arriving at an L1.
    fn l1_fill(&mut self, node: usize, msg: Msg) {
        let now = self.now;
        let mem = self.mem;
        let state = match msg.kind {
            MsgKind::DataS => L1State::S,
            MsgKind::DataE => L1State::E,
            MsgKind::DataM => L1State::M,
            _ => unreachable!("l1_fill only handles data"),
        };
        let mut evict: Option<(u64, L1State)> = None;
        {
            let l1 = &mut self.l1s[node];
            if let Some(st) = l1.cache.get_mut(msg.block) {
                // Upgrade (was S, got M).
                *st = state;
            } else {
                evict = l1.cache.insert(msg.block, state);
            }
            let Some(mshr) = l1.mshrs.remove(&msg.block) else {
                debug_assert!(false, "data without MSHR");
                return;
            };
            for t in mshr.txns {
                l1.done.insert(t, now + mem.l1_latency);
            }
            let latency = now - mshr.start;
            self.stats.l1_miss_latency.add(latency as f64);
            if msg.from_memory {
                self.stats.mem_round_trip.add(latency as f64);
            }
        }
        self.req_start.remove(&(node as u16, msg.block));
        if let Some((vblock, vstate)) = evict {
            if vstate == L1State::M {
                let home = self.home_of(vblock);
                self.send(node, home, Msg::new(MsgKind::PutM, vblock, node));
            }
        }
    }

    /// Forward/invalidate probe arriving at an L1.
    fn l1_probe(&mut self, node: usize, msg: Msg) {
        let home = self.home_of(msg.block);
        match msg.kind {
            MsgKind::FwdS => {
                if let Some(st) = self.l1s[node].cache.get_mut(msg.block) {
                    *st = L1State::S;
                }
                // Reply even when the block was already evicted (the
                // crossing PutM is ignored at the home; see bank_process).
                self.send(
                    node,
                    home,
                    Msg::new(MsgKind::WbData, msg.block, msg.requester as usize),
                );
            }
            MsgKind::FwdM => {
                self.l1s[node].cache.invalidate(msg.block);
                self.send(
                    node,
                    home,
                    Msg::new(MsgKind::WbData, msg.block, msg.requester as usize),
                );
            }
            MsgKind::Inv => {
                self.l1s[node].cache.invalidate(msg.block);
                self.send(
                    node,
                    home,
                    Msg::new(MsgKind::InvAck, msg.block, msg.requester as usize),
                );
            }
            _ => unreachable!("l1_probe only handles probes"),
        }
    }

    /// Directory/L2 processing after the bank access latency. The message's
    /// `src` was stashed in the requester field for unsolicited messages —
    /// see [`Msg::with_src`] for the convention.
    fn bank_process(&mut self, bank: usize, msg: Msg) {
        let block = msg.block;
        if self.banks[bank].busy.contains_key(&block) {
            match msg.kind {
                // Writebacks complete the in-flight transaction.
                MsgKind::WbData | MsgKind::PutM => self.bank_writeback(bank, msg),
                MsgKind::InvAck => self.bank_inv_ack(bank, msg),
                MsgKind::MemData => self.bank_mem_data(bank, msg),
                // New requests wait.
                MsgKind::GetS | MsgKind::GetM => {
                    self.banks[bank]
                        .deferred
                        .entry(block)
                        .or_default()
                        .push_back(msg);
                }
                _ => unreachable!("unexpected bank message {:?}", msg.kind),
            }
            return;
        }
        match msg.kind {
            MsgKind::GetS | MsgKind::GetM => self.bank_request(bank, msg),
            MsgKind::PutM | MsgKind::WbData => self.bank_writeback(bank, msg),
            MsgKind::InvAck => { /* stale ack for an aborted race: drop */ }
            MsgKind::MemData => self.bank_mem_data(bank, msg),
            _ => unreachable!("unexpected bank message {:?}", msg.kind),
        }
    }

    fn bank_request(&mut self, bank: usize, msg: Msg) {
        let block = msg.block;
        let req = msg.requester;
        let store = msg.kind == MsgKind::GetM;
        let dir = self.banks[bank].dir.entry(block).or_default();

        if let Some(owner) = dir.owner {
            if owner == req {
                // Owner re-requesting (e.g. store on an E line after a
                // silent upgrade race): just grant.
                dir.owner = Some(req);
                self.send(
                    bank,
                    req as usize,
                    Msg::new(MsgKind::DataM, block, req as usize),
                );
                return;
            }
            let fwd = if store { MsgKind::FwdM } else { MsgKind::FwdS };
            self.banks[bank].busy.insert(
                block,
                Busy::WaitWb {
                    requester: req,
                    store,
                },
            );
            self.send(bank, owner as usize, Msg::new(fwd, block, req as usize));
            return;
        }

        if dir.sharers != 0 {
            if store {
                let others = dir.sharers & !(1u64 << req);
                let pending = others.count_ones();
                if pending == 0 {
                    // Upgrade by the sole sharer.
                    dir.sharers = 0;
                    dir.owner = Some(req);
                    self.send(
                        bank,
                        req as usize,
                        Msg::new(MsgKind::DataM, block, req as usize),
                    );
                } else {
                    self.banks[bank].busy.insert(
                        block,
                        Busy::WaitAcks {
                            requester: req,
                            pending,
                        },
                    );
                    for s in 0..64u16 {
                        if others & (1 << s) != 0 {
                            self.send(
                                bank,
                                s as usize,
                                Msg::new(MsgKind::Inv, block, req as usize),
                            );
                        }
                    }
                }
                return;
            }
            // GetS with sharers: serve from L2 if resident, else memory.
            let key = self.l2_key(block);
            if self.banks[bank].cache.get_mut(key).is_some() {
                let dir = self.banks[bank].dir.get_mut(&block).expect("entry");
                dir.sharers |= 1 << req;
                self.send(
                    bank,
                    req as usize,
                    Msg::new(MsgKind::DataS, block, req as usize),
                );
            } else {
                self.bank_fetch_memory(bank, block, req, store);
            }
            return;
        }

        // Idle: L2 hit or memory fetch.
        let key = self.l2_key(block);
        if self.banks[bank].cache.get_mut(key).is_some() {
            let dir = self.banks[bank].dir.get_mut(&block).expect("entry");
            dir.owner = Some(req);
            let kind = if store {
                MsgKind::DataM
            } else {
                MsgKind::DataE
            };
            self.send(bank, req as usize, Msg::new(kind, block, req as usize));
        } else {
            self.bank_fetch_memory(bank, block, req, store);
        }
    }

    fn bank_fetch_memory(&mut self, bank: usize, block: u64, req: u16, store: bool) {
        self.banks[bank].busy.insert(
            block,
            Busy::WaitMem {
                requester: req,
                store,
            },
        );
        let mc = self.mc_of(block);
        self.send(bank, mc, Msg::new(MsgKind::MemRead, block, req as usize));
    }

    fn bank_writeback(&mut self, bank: usize, msg: Msg) {
        let block = msg.block;
        match self.banks[bank].busy.get(&block).copied() {
            Some(Busy::WaitWb { requester, store }) => {
                self.banks[bank].busy.remove(&block);
                {
                    let key = self.l2_key(block);
                    let victim = {
                        let cache = &mut self.banks[bank].cache;
                        if let Some(line) = cache.get_mut(key) {
                            line.dirty = true;
                            None
                        } else {
                            cache.insert(key, L2Line { dirty: true })
                        }
                    };
                    if let Some((vk, vl)) = victim {
                        let vb = self.l2_block(vk, bank);
                        self.l2_victim(bank, vb, vl);
                    }
                }
                let dir = self.banks[bank].dir.entry(block).or_default();
                let old_owner = dir.owner.take();
                if store {
                    dir.sharers = 0;
                    dir.owner = Some(requester);
                    self.send(
                        bank,
                        requester as usize,
                        Msg::new(MsgKind::DataM, block, requester as usize),
                    );
                } else {
                    dir.sharers = (1 << requester) | old_owner.map(|o| 1u64 << o).unwrap_or(0);
                    self.send(
                        bank,
                        requester as usize,
                        Msg::new(MsgKind::DataS, block, requester as usize),
                    );
                }
                self.bank_wake(bank, block);
            }
            Some(_) => {
                // Writeback racing another transaction phase: fold the data
                // into L2 and continue.
                let key = self.l2_key(block);
                if let Some(line) = self.banks[bank].cache.get_mut(key) {
                    line.dirty = true;
                }
            }
            None => {
                // Unsolicited PutM eviction: valid only from the recorded
                // owner (PutM carries the evicting node in `requester`);
                // stale writebacks that crossed a forward are ignored.
                if msg.kind != MsgKind::PutM {
                    return;
                }
                let dir = self.banks[bank].dir.entry(block).or_default();
                if dir.owner == Some(msg.requester) {
                    dir.owner = None;
                    let key = self.l2_key(block);
                    let mut victim = None;
                    {
                        let cache = &mut self.banks[bank].cache;
                        if let Some(line) = cache.get_mut(key) {
                            line.dirty = true;
                        } else {
                            victim = cache.insert(key, L2Line { dirty: true });
                        }
                    }
                    if self.banks[bank]
                        .dir
                        .get(&block)
                        .is_some_and(DirEntry::is_idle)
                    {
                        self.banks[bank].dir.remove(&block);
                    }
                    if let Some((vk, vl)) = victim {
                        let vb = self.l2_block(vk, bank);
                        self.l2_victim(bank, vb, vl);
                    }
                }
            }
        }
    }

    fn bank_inv_ack(&mut self, bank: usize, msg: Msg) {
        let block = msg.block;
        let Some(Busy::WaitAcks { requester, pending }) =
            self.banks[bank].busy.get(&block).copied()
        else {
            return; // stale ack
        };
        if pending > 1 {
            self.banks[bank].busy.insert(
                block,
                Busy::WaitAcks {
                    requester,
                    pending: pending - 1,
                },
            );
            return;
        }
        self.banks[bank].busy.remove(&block);
        let dir = self.banks[bank].dir.entry(block).or_default();
        dir.sharers = 0;
        dir.owner = Some(requester);
        self.send(
            bank,
            requester as usize,
            Msg::new(MsgKind::DataM, block, requester as usize),
        );
        self.bank_wake(bank, block);
    }

    fn bank_mem_data(&mut self, bank: usize, msg: Msg) {
        let block = msg.block;
        let Some(Busy::WaitMem { requester, store }) = self.banks[bank].busy.get(&block).copied()
        else {
            debug_assert!(false, "MemData without WaitMem");
            return;
        };
        self.banks[bank].busy.remove(&block);
        {
            let key = self.l2_key(block);
            let victim = {
                let cache = &mut self.banks[bank].cache;
                if cache.contains(key) {
                    None
                } else {
                    cache.insert(key, L2Line { dirty: false })
                }
            };
            if let Some((vk, vl)) = victim {
                let vb = self.l2_block(vk, bank);
                self.l2_victim(bank, vb, vl);
            }
        }
        let dir = self.banks[bank].dir.entry(block).or_default();
        let kind = if store {
            dir.sharers = 0;
            dir.owner = Some(requester);
            MsgKind::DataM
        } else if dir.sharers == 0 {
            dir.owner = Some(requester);
            MsgKind::DataE
        } else {
            dir.sharers |= 1 << requester;
            MsgKind::DataS
        };
        self.send(
            bank,
            requester as usize,
            Msg::new(kind, block, requester as usize).with_memory_flag(true),
        );
        self.bank_wake(bank, block);
    }

    /// Serves deferred requests for `block` until one occupies the
    /// directory again (or none remain). Requests answered immediately
    /// (L2 hits, upgrades) must not strand the queue behind them.
    fn bank_wake(&mut self, bank: usize, block: u64) {
        loop {
            if self.banks[bank]
                .dir
                .get(&block)
                .is_some_and(DirEntry::is_idle)
                && !self.banks[bank].busy.contains_key(&block)
            {
                // Normalize: drop empty entries so `dir` stays compact.
                self.banks[bank].dir.remove(&block);
            }
            if self.banks[bank].busy.contains_key(&block) {
                return;
            }
            let next = self.banks[bank]
                .deferred
                .get_mut(&block)
                .and_then(VecDeque::pop_front);
            let Some(msg) = next else {
                self.banks[bank].deferred.remove(&block);
                return;
            };
            self.bank_request(bank, msg);
        }
    }

    /// Handles an L2 victim line: dirty lines are written to memory;
    /// the directory entry (if any) persists — the directory is
    /// non-inclusive, so no recall traffic is needed.
    fn l2_victim(&mut self, bank: usize, block: u64, line: L2Line) {
        if line.dirty {
            let mc = self.mc_of(block);
            self.send(bank, mc, Msg::new(MsgKind::MemWrite, block, bank));
        }
    }

    /// Aggregates L1 hit/miss counters into the stats snapshot.
    pub fn finalize_stats(&mut self) {
        self.stats.l1_hits = self.l1s.iter().map(|l| l.hits).sum();
        self.stats.l1_misses = self.l1s.iter().map(|l| l.misses).sum();
    }
}

/// Installs `block` in an L1 during functional warming (victims dropped
/// silently; stale directory references recover through the protocol's
/// absent-block probe handling).
fn set_l1_warm(l1: &mut L1, block: u64, state: L1State) {
    if let Some(st) = l1.cache.get_mut(block) {
        *st = state;
    } else {
        let _ = l1.cache.insert(block, state);
    }
}

/// L1 access logic, free function so the core closure can borrow it
/// without capturing the whole system.
#[allow(clippy::too_many_arguments)]
fn l1_issue(
    l1: &mut L1,
    block: u64,
    store: bool,
    now: Cycle,
    l1_latency: Cycle,
    txn_counter: &mut TxnId,
    out: &mut Vec<(u64, bool)>,
) -> MemResult {
    if let Some(state) = l1.cache.get_mut(block) {
        match (*state, store) {
            (_, false) | (L1State::M, true) => {
                l1.hits += 1;
                return MemResult::CompleteAt(now + l1_latency);
            }
            (L1State::E, true) => {
                *state = L1State::M; // silent E->M upgrade
                l1.hits += 1;
                return MemResult::CompleteAt(now + l1_latency);
            }
            (L1State::S, true) => { /* upgrade miss falls through */ }
        }
    }
    // Miss or S-upgrade.
    if let Some(mshr) = l1.mshrs.get_mut(&block) {
        // Coalesce loads into any pending miss; stores only into a pending
        // store miss (a store behind a GetS retries once the fill lands).
        if !store || mshr.is_store {
            let t = *txn_counter;
            *txn_counter += 1;
            mshr.txns.push(t);
            return MemResult::Pending(t);
        }
        return MemResult::Retry;
    }
    if l1.mshrs.len() >= l1.limit {
        return MemResult::Retry;
    }
    l1.misses += 1;
    let t = *txn_counter;
    *txn_counter += 1;
    l1.mshrs.insert(
        block,
        Mshr {
            txns: vec![t],
            is_store: store,
            start: now,
        },
    );
    out.push((block, store));
    MemResult::Pending(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteronoc_noc::config::RouterCfg;
    use heteronoc_noc::topology::TopologyKind;
    use heteronoc_noc::types::Bits;
    use heteronoc_traffic::trace::{TraceRecord, VecTrace};

    fn tiny_net() -> NetworkConfig {
        NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 4,
                height: 4,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        )
    }

    fn cfg() -> CmpConfig {
        CmpConfig {
            net: tiny_net(),
            mem: MemParams {
                dram_latency: 50,
                ..MemParams::default()
            },
            mc_nodes: crate::memctrl::corners4(4, 4),
            core_clock_ghz: 2.2,
            expedited_nodes: Vec::new(),
        }
    }

    fn trace_of(records: Vec<TraceRecord>) -> Box<dyn TraceSource + Send> {
        Box::new(VecTrace::new(records))
    }

    fn empty_traces(n: usize) -> Vec<Box<dyn TraceSource + Send>> {
        (0..n).map(|_| trace_of(Vec::new())).collect()
    }

    fn rec(gap: u32, op: MemOp, addr: u64) -> TraceRecord {
        TraceRecord { gap, op, addr }
    }

    fn run_single(records: Vec<TraceRecord>) -> (CmpSystem, Cycle) {
        let mut traces = empty_traces(16);
        traces[5] = trace_of(records);
        let mut sys = CmpSystem::new(cfg(), vec![CoreParams::OUT_OF_ORDER; 16], traces);
        let cycles = sys.run(500_000);
        assert!(sys.finished(), "system must drain");
        (sys, cycles)
    }

    #[test]
    fn single_load_misses_to_memory_and_completes() {
        let (sys, _) = run_single(vec![rec(0, MemOp::Load, 0x1000)]);
        assert_eq!(sys.committed()[5], 1);
        assert_eq!(sys.stats().mem_reads, 1);
        assert_eq!(sys.stats().mem_round_trip.count(), 1);
        // Round trip includes two network traversals + bank + DRAM(50).
        let rt = sys.stats().mem_round_trip.mean();
        assert!(rt > 50.0 && rt < 300.0, "round trip {rt}");
    }

    #[test]
    fn second_access_hits_in_l1() {
        // Large gaps so the fill lands before the later accesses issue
        // (back-to-back accesses would coalesce into the MSHR instead).
        let (mut sys, _) = run_single(vec![
            rec(0, MemOp::Load, 0x1000),
            rec(2000, MemOp::Load, 0x1000),
            rec(2000, MemOp::Load, 0x1040), // same 128B block
        ]);
        sys.finalize_stats();
        assert_eq!(sys.committed()[5], 4003);
        assert_eq!(sys.stats().l1_misses, 1);
        assert_eq!(sys.stats().l1_hits, 2);
        assert_eq!(sys.stats().mem_reads, 1);
    }

    #[test]
    fn back_to_back_accesses_coalesce_into_mshr() {
        let (mut sys, _) = run_single(vec![
            rec(0, MemOp::Load, 0x1000),
            rec(0, MemOp::Load, 0x1000),
            rec(0, MemOp::Load, 0x1040),
        ]);
        sys.finalize_stats();
        assert_eq!(sys.committed()[5], 3);
        assert_eq!(sys.stats().l1_misses, 1);
        assert_eq!(sys.stats().l1_hits, 0, "coalesced, not hits");
        assert_eq!(sys.stats().mem_reads, 1);
    }

    #[test]
    fn store_after_load_upgrades() {
        let (mut sys, _) = run_single(vec![
            rec(0, MemOp::Load, 0x2000),
            rec(0, MemOp::Store, 0x2000),
        ]);
        sys.finalize_stats();
        assert_eq!(sys.committed()[5], 2);
        // Load fetched E (sole requester), store silently upgraded: one
        // memory read total, one miss.
        assert_eq!(sys.stats().mem_reads, 1);
        assert_eq!(sys.stats().l1_misses, 1);
    }

    #[test]
    fn read_sharing_between_two_cores() {
        let mut traces = empty_traces(16);
        traces[1] = trace_of(vec![rec(0, MemOp::Load, 0x3000)]);
        traces[9] = trace_of(vec![rec(200, MemOp::Load, 0x3000)]);
        let mut sys = CmpSystem::new(cfg(), vec![CoreParams::OUT_OF_ORDER; 16], traces);
        sys.run(500_000);
        assert!(sys.finished());
        assert_eq!(sys.committed()[1], 1);
        assert_eq!(sys.committed()[9], 201);
        // Only one memory fetch: the second GetS is served via the first
        // core's copy (FwdS) or the L2.
        assert_eq!(sys.stats().mem_reads, 1);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut traces = empty_traces(16);
        // Core 2 reads, then core 3 writes the same block, then core 2
        // reads again (must re-fetch).
        traces[2] = trace_of(vec![
            rec(0, MemOp::Load, 0x4000),
            rec(800, MemOp::Load, 0x4000),
        ]);
        traces[3] = trace_of(vec![rec(300, MemOp::Store, 0x4000)]);
        let mut sys = CmpSystem::new(cfg(), vec![CoreParams::OUT_OF_ORDER; 16], traces);
        sys.run(500_000);
        assert!(sys.finished());
        assert_eq!(sys.committed()[2], 802);
        assert_eq!(sys.committed()[3], 301);
        // Core 2's second load misses again (invalidated) and is served by
        // a forward from core 3 — still only ONE memory read overall.
        assert_eq!(sys.stats().mem_reads, 1);
        let mut s = sys;
        s.finalize_stats();
        assert!(s.stats().l1_misses >= 3, "misses {}", s.stats().l1_misses);
    }

    #[test]
    fn many_cores_shared_hot_block_drain() {
        let mut traces = empty_traces(16);
        #[allow(clippy::needless_range_loop)]
        for c in 0..16 {
            let mut recs = Vec::new();
            for i in 0..20 {
                let op = if (c + i) % 3 == 0 {
                    MemOp::Store
                } else {
                    MemOp::Load
                };
                recs.push(rec(5, op, 0x8000));
            }
            traces[c] = trace_of(recs);
        }
        let mut sys = CmpSystem::new(cfg(), vec![CoreParams::OUT_OF_ORDER; 16], traces);
        let cycles = sys.run(2_000_000);
        assert!(
            sys.finished(),
            "coherence hot block must drain, now={cycles}"
        );
        for c in 0..16 {
            assert_eq!(sys.committed()[c], 20 * 6);
        }
    }

    #[test]
    fn ipc_reasonable_for_compute_heavy_trace() {
        let recs: Vec<TraceRecord> = (0..200)
            .map(|i| rec(30, MemOp::Load, 0x1_0000 + i * 128))
            .collect();
        let (sys, _) = run_single(recs);
        let ipc = sys.ipcs()[5];
        assert!(ipc > 0.5, "compute-heavy ipc {ipc}");
        assert!(ipc <= 3.0);
    }

    #[test]
    fn deterministic_runs() {
        let mk = || {
            let mut traces = empty_traces(16);
            #[allow(clippy::needless_range_loop)]
            for c in 0..16 {
                let recs: Vec<TraceRecord> = (0..50)
                    .map(|i| rec(3, MemOp::Load, ((c * 911 + i * 131) % 4096) as u64 * 128))
                    .collect();
                traces[c] = trace_of(recs);
            }
            let mut sys = CmpSystem::new(cfg(), vec![CoreParams::OUT_OF_ORDER; 16], traces);
            let cycles = sys.run(2_000_000);
            (cycles, sys.committed(), sys.stats().mem_reads)
        };
        assert_eq!(mk().0, mk().0);
        let a = mk();
        let b = mk();
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }
}
