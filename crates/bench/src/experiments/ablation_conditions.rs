//! Ablation study: under which conditions does heterogeneous resource
//! redistribution win in this simulator?
//!
//! The paper's synthetic-traffic gains could not be reproduced under its
//! stated constraints (see EXPERIMENTS.md); this experiment isolates the
//! three mechanisms that penalize HeteroNoC in a first-principles model and
//! quantifies each:
//!
//! 1. **Flit-width tax**: 128b flits turn a 1024b line into 8 flits and
//!    halve narrow-link packet capacity relative to 192b links.
//! 2. **Clock tax**: the worst-case 2.07 GHz network clock (§3.4).
//! 3. **VC asymmetry**: stripping edge routers to 2 VCs costs more than
//!    6-VC centre routers gain (run `cargo bench -p heteronoc-bench` for
//!    the router-level sensitivity).
//!
//! Each variant removes one tax from Diagonal+BL and re-measures UR latency
//! at a moderate load; a "no-tax" variant (192b flits everywhere, wide
//! centre links as an *additive* upgrade, baseline clock) shows the upside
//! the paper's intuition points at when the conservation constraints are
//! relaxed.

use crate::{default_params, Report};
use heteronoc::noc::config::{LinkWidths, NetworkConfig, RouterCfg};
use heteronoc::noc::network::Network;
use heteronoc::noc::sim::SimRun;
use heteronoc::noc::types::Bits;
use heteronoc::{mesh_config, Layout, Placement};

fn measure(cfg: NetworkConfig, rate: f64) -> (f64, bool) {
    let f = cfg.frequency_ghz;
    let net = Network::new(cfg).expect("valid");
    let out = SimRun::new(net, default_params(rate, 0xAB1A))
        .run()
        .expect("simulation run");
    (out.stats.latency.mean_total() / f, out.saturated)
}

pub fn run() {
    let mut rep = Report::new("ablation_conditions");
    rep.line("# Ablation — decomposing the HeteroNoC taxes (UR @ 0.04 and 0.055)");
    rep.line(format!(
        "{:<34}{:>14}{:>14}",
        "variant", "lat@0.04", "lat@0.055"
    ));

    let diag = Placement::diagonals(8, 8);
    let routers_hetero: Vec<RouterCfg> = diag
        .mask()
        .iter()
        .map(|&b| if b { RouterCfg::BIG } else { RouterCfg::SMALL })
        .collect();

    let mut variants: Vec<(&str, NetworkConfig)> = Vec::new();
    variants.push(("Baseline (homogeneous)", mesh_config(&Layout::Baseline)));
    variants.push((
        "Diagonal+BL (paper constraints)",
        mesh_config(&Layout::DiagonalBL),
    ));

    // Remove the clock tax.
    let mut v = mesh_config(&Layout::DiagonalBL);
    v.frequency_ghz = 2.2;
    variants.push(("Diagonal+BL @ 2.2 GHz", v));

    // Remove the flit-width tax: buffer-only redistribution (192b links).
    variants.push((
        "Diagonal+B (192b, buffers only)",
        mesh_config(&Layout::DiagonalB),
    ));

    // Buffer-only at the baseline clock.
    let mut v = mesh_config(&Layout::DiagonalB);
    v.frequency_ghz = 2.2;
    variants.push(("Diagonal+B @ 2.2 GHz", v));

    // Relax conservation: keep every router/link at baseline provisioning
    // and *additionally* widen the diagonal routers' links to 384b
    // (2 x 192b lanes) and their buffers to 6 VCs. This is the "what the
    // intuition buys without the taxes" upper bound.
    let mut v = mesh_config(&Layout::Baseline);
    v.routers = diag
        .mask()
        .iter()
        .map(|&b| {
            if b {
                RouterCfg::BIG
            } else {
                RouterCfg::BASELINE
            }
        })
        .collect();
    v.link_widths = LinkWidths::ByBigRouters {
        big: diag.mask().to_vec(),
        narrow: Bits(192),
        wide: Bits(384),
    };
    variants.push(("Additive big diagonals @ 2.2 GHz", v));

    // Width tax alone: homogeneous 3-VC routers but 128b flits/links at the
    // baseline clock (8-flit packets over narrow channels, no VC changes).
    let mut v = mesh_config(&Layout::Baseline);
    v.flit_width = Bits(128);
    v.link_widths = LinkWidths::Uniform(Bits(128));
    variants.push(("128b width tax only @ 2.2 GHz", v));
    let _ = routers_hetero;

    for (name, cfg) in variants {
        let (l1, s1) = measure(cfg.clone(), 0.04);
        let (l2, s2) = measure(cfg, 0.055);
        let fmt = |l: f64, s: bool| {
            if s {
                "sat".to_owned()
            } else {
                format!("{l:.2}ns")
            }
        };
        rep.line(format!(
            "{:<34}{:>14}{:>14}",
            name,
            fmt(l1, s1),
            fmt(l2, s2)
        ));
    }
    rep.line("");
    rep.line("Reading: each removed tax closes part of the gap; the additive variant");
    rep.line("(no conservation constraints) is the only one that beats the baseline,");
    rep.line("quantifying how much of the paper's claim rests on its cost model.");
}
