//! Figure 10: heterogeneity in a mesh vs an edge-symmetric torus. For each
//! application workload we measure the network-latency reduction of the
//! Diagonal+BL heterogeneous layout over the homogeneous baseline, on both
//! topologies. The paper finds the torus benefit ~44% smaller on average:
//! torus wrap-around paths bypass the centrally-provisioned big routers.
//!
//! The workload × layout × topology grid runs on the sweep engine as
//! closed-loop CMP points: the four system simulations behind each table
//! row execute in parallel and are memoized in `results/cache/`.

use crate::sweep::{run_sweep, PointKind, PointSpec, Sweep, SweepOptions};
use crate::{full_scale, pct_reduction, Report};
use heteronoc::noc::topology::TopologyKind;
use heteronoc::traffic::workloads::Benchmark;
use heteronoc::{network_config, Layout};

const SEED: u64 = 0xF1610;

fn trace_len() -> u64 {
    if full_scale() {
        15_000
    } else {
        1_000
    }
}

/// Full scale covers all ten benchmarks; quick mode a representative five
/// (two commercial, three PARSEC spanning the sharing/locality range).
fn benchmarks() -> Vec<Benchmark> {
    if full_scale() {
        Benchmark::ALL.to_vec()
    } else {
        vec![
            Benchmark::Sap,
            Benchmark::SpecJbb,
            Benchmark::Vips,
            Benchmark::Canneal,
            Benchmark::StreamCluster,
        ]
    }
}

pub fn run() {
    let mut rep = Report::new("fig10_torus");
    rep.line("# Figure 10 — heterogeneity benefit: 8x8 mesh vs 8x8 torus");
    rep.line(format!(
        "# Diagonal+BL latency reduction over baseline per workload; {} refs/core",
        trace_len()
    ));

    let mesh = TopologyKind::Mesh {
        width: 8,
        height: 8,
    };
    let torus = TopologyKind::Torus {
        width: 8,
        height: 8,
    };
    let benches = benchmarks();

    // Four closed-loop points per workload: (mesh, torus) × (base, het),
    // in that order — the extraction below relies on it.
    let cells = [
        ("mesh", mesh, Layout::Baseline),
        ("mesh", mesh, Layout::DiagonalBL),
        ("torus", torus, Layout::Baseline),
        ("torus", torus, Layout::DiagonalBL),
    ];
    let mut sweep = Sweep::new("fig10_torus");
    for &bench in &benches {
        for (topo_name, topo, ref layout) in &cells {
            sweep.push(PointSpec {
                label: format!("{bench}|{topo_name}|{}", layout.name()),
                config: network_config(layout, *topo),
                kind: PointKind::CmpWorkload {
                    benchmark: bench,
                    refs_per_core: trace_len(),
                    seed: SEED,
                    max_cycles: 20_000_000,
                },
            });
        }
    }
    let outcome = run_sweep(&sweep, &SweepOptions::default()).expect("fig10 sweep");
    outcome.write_json().expect("write fig10 json");
    rep.line(format!(
        "# sweep: {} system runs ({} simulated, {} cached), {:.2}s wall on {} worker(s)",
        outcome.points.len(),
        outcome.simulated,
        outcome.cache_hits,
        outcome.wall_secs,
        outcome.jobs,
    ));
    rep.line("");
    rep.line(format!("{:<12}{:>14}{:>14}", "workload", "mesh", "torus"));

    let mut mesh_sum = 0.0;
    let mut torus_sum = 0.0;
    for (bench, row) in benches.iter().zip(outcome.points.chunks(cells.len())) {
        for p in row {
            assert!(
                p.error.is_none(),
                "{}: {}",
                p.label,
                p.error.as_deref().unwrap_or("")
            );
        }
        let m = pct_reduction(row[0].latency_ns, row[1].latency_ns);
        let t = pct_reduction(row[2].latency_ns, row[3].latency_ns);
        mesh_sum += m;
        torus_sum += t;
        rep.line(format!(
            "{:<12}{:>+13.1}%{:>+13.1}%",
            bench.to_string(),
            m,
            t
        ));
    }
    let n = benches.len() as f64;
    rep.line(format!(
        "{:<12}{:>+13.1}%{:>+13.1}%",
        "mean",
        mesh_sum / n,
        torus_sum / n
    ));
    rep.line("");
    rep.line(format!(
        "relative: torus benefit is {:.0}% of the mesh benefit (paper: ~56%, i.e. 44% smaller)",
        100.0 * (torus_sum / mesh_sum)
    ));
}
