//! Lossless capture and restore of the engine's complete dynamic state.
//!
//! This module is the network half of the checkpoint body (the driver-loop
//! half lives in [`crate::sim`]): every router buffer, VC allocation,
//! credit counter, arbiter pointer, source queue, wheel event, in-flight
//! packet, statistic, fault-layer structure and epoch accumulator is
//! written by [`Network::encode_state`] and read back by
//! [`Network::decode_state`] onto a freshly built network of the same
//! configuration. Restore is exact: the restored network produces the same
//! cycle-by-cycle schedules, the same trace events and the same final
//! statistics as the original would have.
//!
//! Hash-map shaped state (`in_flight`, the e2e `by_packet` map, zombie
//! sets, absorbed counts) is serialized **sorted by key**. The engine only
//! ever uses these maps for point lookups — never iterates them in a way
//! that affects schedules — so the restored maps' different internal order
//! is unobservable.
//!
//! [`Network::state_digest`] hashes the encoded state, giving replay
//! tooling a cheap per-cycle trajectory fingerprint, and
//! [`Network::divergences`] walks two networks field by field to explain
//! *where* two supposedly identical states differ (router, VC, field,
//! expected vs actual) — the payload of `heteronoc replay`'s report.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;

use crate::checkpoint::{fnv1a64, CheckpointError, Dec, Enc};
use crate::fault::{
    DropReason, DroppedPacket, FaultCounters, FaultPlan, RecoveryCounters, UnrecoverableFault,
};
use crate::metrics::EpochRecorder;
use crate::packet::{Flit, FlitKind, Packet, PacketClass};
use crate::router::arbiter::RrArbiter;
use crate::routing::{RouteChoice, RouteTable, RoutingKind, VcClass};
use crate::stats::{
    LatencyAgg, LatencyDist, LatencyHistogram, LatencyPctls, LinkEvents, PacketRecord, Pctls,
    RouterEvents,
};
use crate::types::{Bits, LinkId, NodeId, PacketId, PortId, RouterId, VcId};

use super::fault_state::{FarEvent, FaultState, ReplayEntry, Retained, SourceE2e};
use super::{Delivered, Event, Network, NodeState, PacketMeta, Sending, Upstream, WHEEL};

/// One field-level difference between two network states (see
/// [`Network::divergences`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Where the difference sits, e.g. `"r3.p1.v0"`, `"n5"`, `"wheel[2]"`
    /// or `"global"`.
    pub location: String,
    /// Name of the differing field, e.g. `"credits"` or `"fifo"`.
    pub field: String,
    /// Value in the reference (`self`) network.
    pub expected: String,
    /// Value in the compared (`other`) network.
    pub actual: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}: expected {}, got {}",
            self.location, self.field, self.expected, self.actual
        )
    }
}

// --------------------------------------------------------------------------
// Section tags (checked on decode; a mismatch names the section)
// --------------------------------------------------------------------------

const SEC_GLOBALS: u8 = 1;
const SEC_ROUTERS: u8 = 2;
const SEC_NODES: u8 = 3;
const SEC_WHEEL: u8 = 4;
const SEC_IN_FLIGHT: u8 = 5;
const SEC_DELIVERED: u8 = 6;
const SEC_STATS: u8 = 7;
const SEC_ROUTING: u8 = 8;
const SEC_FAULTS: u8 = 9;
const SEC_EPOCHS: u8 = 10;

// --------------------------------------------------------------------------
// Primitive codecs
// --------------------------------------------------------------------------

fn enc_class(e: &mut Enc, c: PacketClass) {
    e.u8(match c {
        PacketClass::Data => 0,
        PacketClass::Control => 1,
        PacketClass::Expedited => 2,
    });
}

fn dec_class(d: &mut Dec) -> Result<PacketClass, CheckpointError> {
    Ok(match d.u8()? {
        0 => PacketClass::Data,
        1 => PacketClass::Control,
        2 => PacketClass::Expedited,
        _ => return Err(CheckpointError::Malformed("packet class")),
    })
}

fn enc_flit(e: &mut Enc, f: &Flit) {
    e.u64(f.packet.index() as u64);
    e.u8(match f.kind {
        FlitKind::Head => 0,
        FlitKind::Body => 1,
        FlitKind::Tail => 2,
        FlitKind::HeadTail => 3,
    });
    e.u32(f.seq);
    e.u32(f.total);
    e.usize(f.src.index());
    e.usize(f.dst.index());
    enc_class(e, f.class);
    e.u64(f.inject);
    e.u64(f.buffered);
}

fn dec_flit(d: &mut Dec) -> Result<Flit, CheckpointError> {
    Ok(Flit {
        packet: PacketId(d.usize()?),
        kind: match d.u8()? {
            0 => FlitKind::Head,
            1 => FlitKind::Body,
            2 => FlitKind::Tail,
            3 => FlitKind::HeadTail,
            _ => return Err(CheckpointError::Malformed("flit kind")),
        },
        seq: d.u32()?,
        total: d.u32()?,
        src: NodeId(d.usize()?),
        dst: NodeId(d.usize()?),
        class: dec_class(d)?,
        inject: d.u64()?,
        buffered: d.u64()?,
    })
}

fn enc_packet(e: &mut Enc, p: &Packet) {
    e.usize(p.id.index());
    e.usize(p.src.index());
    e.usize(p.dst.index());
    e.u32(p.size.get());
    enc_class(e, p.class);
    e.u64(p.tag);
    e.u64(p.birth);
}

fn dec_packet(d: &mut Dec) -> Result<Packet, CheckpointError> {
    Ok(Packet {
        id: PacketId(d.usize()?),
        src: NodeId(d.usize()?),
        dst: NodeId(d.usize()?),
        size: Bits(d.u32()?),
        class: dec_class(d)?,
        tag: d.u64()?,
        birth: d.u64()?,
    })
}

fn enc_route(e: &mut Enc, r: &Option<RouteChoice>) {
    match r {
        None => e.bool(false),
        Some(rc) => {
            e.bool(true);
            e.usize(rc.port.index());
            e.u8(match rc.class {
                VcClass::Any => 0,
                VcClass::Dateline0 => 1,
                VcClass::Dateline1 => 2,
                VcClass::NonEscape => 3,
                VcClass::Escape => 4,
            });
        }
    }
}

fn dec_route(d: &mut Dec) -> Result<Option<RouteChoice>, CheckpointError> {
    if !d.bool()? {
        return Ok(None);
    }
    Ok(Some(RouteChoice {
        port: PortId(d.usize()?),
        class: match d.u8()? {
            0 => VcClass::Any,
            1 => VcClass::Dateline0,
            2 => VcClass::Dateline1,
            3 => VcClass::NonEscape,
            4 => VcClass::Escape,
            _ => return Err(CheckpointError::Malformed("vc class")),
        },
    }))
}

fn enc_arb(e: &mut Enc, a: &RrArbiter) {
    e.usize(a.pointer());
}

fn dec_arb(d: &mut Dec) -> Result<RrArbiter, CheckpointError> {
    Ok(RrArbiter::from_pointer(d.usize()?))
}

fn enc_opt_usize(e: &mut Enc, v: Option<usize>) {
    match v {
        None => e.bool(false),
        Some(x) => {
            e.bool(true);
            e.usize(x);
        }
    }
}

fn dec_opt_usize(d: &mut Dec) -> Result<Option<usize>, CheckpointError> {
    Ok(if d.bool()? { Some(d.usize()?) } else { None })
}

fn enc_hist(e: &mut Enc, h: &LatencyHistogram) {
    e.u64s(h.buckets());
    e.u64(h.count());
}

fn dec_hist(d: &mut Dec) -> Result<LatencyHistogram, CheckpointError> {
    let buckets = d.u64s()?;
    let count = d.u64()?;
    Ok(LatencyHistogram::from_parts(buckets, count))
}

fn enc_dist(e: &mut Enc, dist: &LatencyDist) {
    enc_hist(e, &dist.total);
    enc_hist(e, &dist.queuing);
    enc_hist(e, &dist.blocking);
    enc_hist(e, &dist.transfer);
}

fn dec_dist(d: &mut Dec) -> Result<LatencyDist, CheckpointError> {
    Ok(LatencyDist {
        total: dec_hist(d)?,
        queuing: dec_hist(d)?,
        blocking: dec_hist(d)?,
        transfer: dec_hist(d)?,
    })
}

fn enc_agg(e: &mut Enc, a: &LatencyAgg) {
    e.u64(a.count);
    e.u64(a.total);
    e.u64(a.queuing);
    e.u64(a.blocking);
    e.u64(a.transfer);
}

fn dec_agg(d: &mut Dec) -> Result<LatencyAgg, CheckpointError> {
    Ok(LatencyAgg {
        count: d.u64()?,
        total: d.u64()?,
        queuing: d.u64()?,
        blocking: d.u64()?,
        transfer: d.u64()?,
    })
}

fn enc_record(e: &mut Enc, r: &PacketRecord) {
    e.usize(r.src.index());
    e.usize(r.dst.index());
    e.u64(r.birth);
    e.u64(r.inject);
    e.u64(r.retire);
    e.u32(r.flits);
    e.u64(r.ideal);
    enc_class(e, r.class);
}

fn dec_record(d: &mut Dec) -> Result<PacketRecord, CheckpointError> {
    Ok(PacketRecord {
        src: NodeId(d.usize()?),
        dst: NodeId(d.usize()?),
        birth: d.u64()?,
        inject: d.u64()?,
        retire: d.u64()?,
        flits: d.u32()?,
        ideal: d.u64()?,
        class: dec_class(d)?,
    })
}

fn enc_event(e: &mut Enc, ev: &Event) {
    match ev {
        Event::FlitArrive {
            router,
            port,
            vc,
            flit,
        } => {
            e.u8(0);
            e.usize(router.index());
            e.usize(port.index());
            e.usize(vc.index());
            enc_flit(e, flit);
        }
        Event::Credit { up, vc } => {
            e.u8(1);
            match up {
                Upstream::Router(r, p) => {
                    e.u8(0);
                    e.usize(r.index());
                    e.usize(p.index());
                }
                Upstream::Node(n) => {
                    e.u8(1);
                    e.usize(n.index());
                }
            }
            e.usize(vc.index());
        }
        Event::Retire { flit } => {
            e.u8(2);
            enc_flit(e, flit);
        }
        Event::LinkArrive {
            link,
            seq,
            corrupted,
            router,
            port,
            vc,
            flit,
        } => {
            e.u8(3);
            e.usize(link.index());
            e.u64(*seq);
            e.bool(*corrupted);
            e.usize(router.index());
            e.usize(port.index());
            e.usize(vc.index());
            enc_flit(e, flit);
        }
        Event::Ack { link, seq } => {
            e.u8(4);
            e.usize(link.index());
            e.u64(*seq);
        }
        Event::Nack { link, seq } => {
            e.u8(5);
            e.usize(link.index());
            e.u64(*seq);
        }
    }
}

fn dec_event(d: &mut Dec) -> Result<Event, CheckpointError> {
    Ok(match d.u8()? {
        0 => Event::FlitArrive {
            router: RouterId(d.usize()?),
            port: PortId(d.usize()?),
            vc: VcId(d.usize()?),
            flit: dec_flit(d)?,
        },
        1 => Event::Credit {
            up: match d.u8()? {
                0 => Upstream::Router(RouterId(d.usize()?), PortId(d.usize()?)),
                1 => Upstream::Node(NodeId(d.usize()?)),
                _ => return Err(CheckpointError::Malformed("upstream")),
            },
            vc: VcId(d.usize()?),
        },
        2 => Event::Retire { flit: dec_flit(d)? },
        3 => Event::LinkArrive {
            link: LinkId(d.usize()?),
            seq: d.u64()?,
            corrupted: d.bool()?,
            router: RouterId(d.usize()?),
            port: PortId(d.usize()?),
            vc: VcId(d.usize()?),
            flit: dec_flit(d)?,
        },
        4 => Event::Ack {
            link: LinkId(d.usize()?),
            seq: d.u64()?,
        },
        5 => Event::Nack {
            link: LinkId(d.usize()?),
            seq: d.u64()?,
        },
        _ => return Err(CheckpointError::Malformed("event tag")),
    })
}

fn enc_routing(e: &mut Enc, routing: &RoutingKind) {
    let enc_table = |e: &mut Enc, t: &RouteTable| {
        let mut pairs: Vec<((RouterId, RouterId), &[RouterId])> = t.pairs().collect();
        pairs.sort_by_key(|&(k, _)| k);
        e.usize(pairs.len());
        for ((src, dst), path) in pairs {
            e.usize(src.index());
            e.usize(dst.index());
            e.usize(path.len());
            for r in path {
                e.usize(r.index());
            }
        }
    };
    match routing {
        RoutingKind::DimensionOrder => e.u8(0),
        RoutingKind::TableXy(t) => {
            e.u8(1);
            enc_table(e, t);
        }
        RoutingKind::FullTable(t) => {
            e.u8(2);
            enc_table(e, t);
        }
    }
}

fn dec_routing(d: &mut Dec) -> Result<RoutingKind, CheckpointError> {
    let dec_table = |d: &mut Dec| -> Result<RouteTable, CheckpointError> {
        let n = d.len(24)?;
        let mut t = RouteTable::new();
        for _ in 0..n {
            let src = RouterId(d.usize()?);
            let dst = RouterId(d.usize()?);
            let len = d.len(8)?;
            let mut path = Vec::with_capacity(len);
            for _ in 0..len {
                path.push(RouterId(d.usize()?));
            }
            if path.first() != Some(&src) || path.last() != Some(&dst) {
                return Err(CheckpointError::Malformed("route table path"));
            }
            t.insert(src, dst, path);
        }
        Ok(t)
    };
    Ok(match d.u8()? {
        0 => RoutingKind::DimensionOrder,
        1 => RoutingKind::TableXy(dec_table(d)?),
        2 => RoutingKind::FullTable(dec_table(d)?),
        _ => return Err(CheckpointError::Malformed("routing kind")),
    })
}

fn enc_fault_counters(e: &mut Enc, c: &FaultCounters) {
    for v in [
        c.flits_corrupted,
        c.retransmissions,
        c.retries,
        c.timeouts,
        c.flits_lost_dead_router,
        c.packets_dropped,
        c.links_dead,
        c.routers_dead,
    ] {
        e.u64(v);
    }
}

fn dec_fault_counters(d: &mut Dec) -> Result<FaultCounters, CheckpointError> {
    Ok(FaultCounters {
        flits_corrupted: d.u64()?,
        retransmissions: d.u64()?,
        retries: d.u64()?,
        timeouts: d.u64()?,
        flits_lost_dead_router: d.u64()?,
        packets_dropped: d.u64()?,
        links_dead: d.u64()?,
        routers_dead: d.u64()?,
    })
}

fn enc_recovery_counters(e: &mut Enc, c: &RecoveryCounters) {
    for v in [
        c.acks,
        c.reinjections,
        c.reinjected_flits,
        c.duplicates_suppressed,
        c.recovered,
        c.lost,
        c.retention_peak,
        c.retention_stalls,
    ] {
        e.u64(v);
    }
}

fn dec_recovery_counters(d: &mut Dec) -> Result<RecoveryCounters, CheckpointError> {
    Ok(RecoveryCounters {
        acks: d.u64()?,
        reinjections: d.u64()?,
        reinjected_flits: d.u64()?,
        duplicates_suppressed: d.u64()?,
        recovered: d.u64()?,
        lost: d.u64()?,
        retention_peak: d.u64()?,
        retention_stalls: d.u64()?,
    })
}

fn enc_drop_reason(e: &mut Enc, r: DropReason) {
    e.u8(match r {
        DropReason::SourceDead => 0,
        DropReason::DestinationDead => 1,
        DropReason::Unreachable => 2,
        DropReason::Wedged => 3,
        DropReason::RecoveryExhausted => 4,
    });
}

fn dec_drop_reason(d: &mut Dec) -> Result<DropReason, CheckpointError> {
    Ok(match d.u8()? {
        0 => DropReason::SourceDead,
        1 => DropReason::DestinationDead,
        2 => DropReason::Unreachable,
        3 => DropReason::Wedged,
        4 => DropReason::RecoveryExhausted,
        _ => return Err(CheckpointError::Malformed("drop reason")),
    })
}

fn enc_far_event(e: &mut Enc, ev: &FarEvent) {
    match *ev {
        FarEvent::Resend { link, epoch } => {
            e.u8(0);
            e.usize(link.index());
            e.u64(epoch);
        }
        FarEvent::Timeout { link, epoch } => {
            e.u8(1);
            e.usize(link.index());
            e.u64(epoch);
        }
        FarEvent::E2eAck { node, seq } => {
            e.u8(2);
            e.usize(node.index());
            e.u64(seq);
        }
        FarEvent::E2eTimeout { node, seq, attempt } => {
            e.u8(3);
            e.usize(node.index());
            e.u64(seq);
            e.u32(attempt);
        }
    }
}

fn dec_far_event(d: &mut Dec) -> Result<FarEvent, CheckpointError> {
    Ok(match d.u8()? {
        0 => FarEvent::Resend {
            link: LinkId(d.usize()?),
            epoch: d.u64()?,
        },
        1 => FarEvent::Timeout {
            link: LinkId(d.usize()?),
            epoch: d.u64()?,
        },
        2 => FarEvent::E2eAck {
            node: NodeId(d.usize()?),
            seq: d.u64()?,
        },
        3 => FarEvent::E2eTimeout {
            node: NodeId(d.usize()?),
            seq: d.u64()?,
            attempt: d.u32()?,
        },
        _ => return Err(CheckpointError::Malformed("far event")),
    })
}

fn enc_rng(e: &mut Enc, rng: &StdRng) {
    for w in rng.state() {
        e.u64(w);
    }
}

fn dec_rng(d: &mut Dec) -> Result<StdRng, CheckpointError> {
    Ok(StdRng::from_state([d.u64()?, d.u64()?, d.u64()?, d.u64()?]))
}

// --------------------------------------------------------------------------
// Fault-state codec
// --------------------------------------------------------------------------

fn enc_faults(e: &mut Enc, fs: &FaultState) {
    e.str(&fs.plan.to_text());
    enc_rng(e, &fs.rng);
    e.usize(fs.links.len());
    for l in &fs.links {
        e.usize(l.replay.len());
        for r in &l.replay {
            e.u64(r.seq);
            e.usize(r.vc.index());
            enc_flit(e, &r.flit);
        }
        e.u64(l.tx_seq);
        e.u64(l.rx_expected);
        e.u32(l.attempts);
        e.u64(l.epoch);
        e.u64(l.backoff_until);
        e.bool(l.dead);
        e.usize(l.in_transit.len());
        for &t in &l.in_transit {
            e.u32(t);
        }
    }
    e.usize(fs.next_hard);
    e.usize(fs.far.len());
    for (&cycle, evs) in &fs.far {
        e.u64(cycle);
        e.usize(evs.len());
        for ev in evs {
            enc_far_event(e, ev);
        }
    }
    e.usize(fs.router_dead.len());
    for &d in &fs.router_dead {
        e.bool(d);
    }
    e.usize(fs.dead_links.len());
    for l in &fs.dead_links {
        e.usize(l.index());
    }
    e.usize(fs.dead_routers.len());
    for r in &fs.dead_routers {
        e.usize(r.index());
    }
    e.usize(fs.absorbing.len());
    for &(r, p, v) in &fs.absorbing {
        e.usize(r.index());
        e.usize(p.index());
        e.usize(v.index());
    }
    let mut absorbed: Vec<(PacketId, u32)> = fs.absorbed.iter().map(|(&k, &v)| (k, v)).collect();
    absorbed.sort_by_key(|&(k, _)| k);
    e.usize(absorbed.len());
    for (k, v) in absorbed {
        e.usize(k.index());
        e.u32(v);
    }
    e.usize(fs.dropped.len());
    for dp in &fs.dropped {
        enc_packet(e, &dp.packet);
        e.u64(dp.cycle);
        enc_drop_reason(e, dp.reason);
        e.bool(dp.recoverable);
    }
    enc_fault_counters(e, &fs.counters);
    match &fs.error {
        None => e.bool(false),
        Some(err) => {
            e.bool(true);
            e.usize(err.link.index());
            e.usize(err.src.index());
            e.usize(err.dst.index());
            e.u32(err.attempts);
            e.u64(err.cycle);
            enc_opt_usize(e, err.packet.map(PacketId::index));
        }
    }
    e.bool(fs.routing_stale);
    match &fs.e2e {
        None => e.bool(false),
        Some(e2e) => {
            e.bool(true);
            e.usize(e2e.sources.len());
            for s in &e2e.sources {
                e.u64(s.next_seq);
                e.usize(s.retained.len());
                for (&seq, r) in &s.retained {
                    e.u64(seq);
                    e.usize(r.dst.index());
                    e.u32(r.size.get());
                    enc_class(e, r.class);
                    e.u64(r.tag);
                    e.bool(r.measured);
                    e.u64(r.first_birth);
                    e.u32(r.attempts);
                    e.usize(r.current.index());
                    e.bool(r.current_alive);
                }
                e.u64(s.contig);
                e.usize(s.sparse.len());
                for &x in &s.sparse {
                    e.u64(x);
                }
            }
            let mut by_packet: Vec<(PacketId, (NodeId, u64))> =
                e2e.by_packet.iter().map(|(&k, &v)| (k, v)).collect();
            by_packet.sort_by_key(|&(k, _)| k);
            e.usize(by_packet.len());
            for (k, (n, seq)) in by_packet {
                e.usize(k.index());
                e.usize(n.index());
                e.u64(seq);
            }
            let mut zombies: Vec<PacketId> = e2e.zombies.iter().copied().collect();
            zombies.sort();
            e.usize(zombies.len());
            for z in zombies {
                e.usize(z.index());
            }
            enc_recovery_counters(e, &e2e.counters);
        }
    }
}

/// Rebuilds a [`FaultState`] from the stream. Structural members
/// (`p_flit`, the sorted hard-fault list, the e2e policy) are re-derived
/// from the embedded plan via [`FaultState::new`]; everything dynamic is
/// then overwritten from the stream.
fn dec_faults(d: &mut Dec, net: &Network) -> Result<FaultState, CheckpointError> {
    let plan_text = d.str()?;
    let plan =
        FaultPlan::from_text(&plan_text).map_err(|_| CheckpointError::Malformed("fault plan"))?;
    plan.validate(net.graph.num_links(), net.graph.num_routers())
        .map_err(|_| CheckpointError::Malformed("fault plan bounds"))?;
    let vcs: Vec<usize> = (0..net.graph.num_routers())
        .map(|r| net.cfg.routers[r].vcs_per_port)
        .collect();
    let mut fs = FaultState::new(plan, &net.graph, net.cfg.flit_width, &vcs);
    fs.rng = dec_rng(d)?;
    let nl = d.len(8)?;
    if nl != fs.links.len() {
        return Err(CheckpointError::Malformed("link count"));
    }
    for l in &mut fs.links {
        let nr = d.len(8)?;
        let mut replay = VecDeque::with_capacity(nr);
        for _ in 0..nr {
            replay.push_back(ReplayEntry {
                seq: d.u64()?,
                vc: VcId(d.usize()?),
                flit: dec_flit(d)?,
            });
        }
        l.replay = replay;
        l.tx_seq = d.u64()?;
        l.rx_expected = d.u64()?;
        l.attempts = d.u32()?;
        l.epoch = d.u64()?;
        l.backoff_until = d.u64()?;
        l.dead = d.bool()?;
        let nt = d.len(4)?;
        if nt != l.in_transit.len() {
            return Err(CheckpointError::Malformed("in_transit count"));
        }
        for t in &mut l.in_transit {
            *t = d.u32()?;
        }
    }
    fs.next_hard = d.usize()?;
    if fs.next_hard > fs.hard.len() {
        return Err(CheckpointError::Malformed("next_hard"));
    }
    let nf = d.len(8)?;
    let mut far = BTreeMap::new();
    for _ in 0..nf {
        let cycle = d.u64()?;
        let ne = d.len(1)?;
        let mut evs = Vec::with_capacity(ne);
        for _ in 0..ne {
            evs.push(dec_far_event(d)?);
        }
        far.insert(cycle, evs);
    }
    fs.far = far;
    let nrd = d.len(1)?;
    if nrd != fs.router_dead.len() {
        return Err(CheckpointError::Malformed("router_dead count"));
    }
    for rd in &mut fs.router_dead {
        *rd = d.bool()?;
    }
    let ndl = d.len(8)?;
    fs.dead_links = (0..ndl)
        .map(|_| d.usize().map(LinkId))
        .collect::<Result<_, _>>()?;
    let ndr = d.len(8)?;
    fs.dead_routers = (0..ndr)
        .map(|_| d.usize().map(RouterId))
        .collect::<Result<_, _>>()?;
    let na = d.len(24)?;
    let mut absorbing = BTreeSet::new();
    for _ in 0..na {
        absorbing.insert((RouterId(d.usize()?), PortId(d.usize()?), VcId(d.usize()?)));
    }
    fs.absorbing = absorbing;
    let nab = d.len(12)?;
    let mut absorbed = HashMap::with_capacity(nab);
    for _ in 0..nab {
        let k = PacketId(d.usize()?);
        let v = d.u32()?;
        absorbed.insert(k, v);
    }
    fs.absorbed = absorbed;
    let ndp = d.len(8)?;
    let mut dropped = Vec::with_capacity(ndp);
    for _ in 0..ndp {
        dropped.push(DroppedPacket {
            packet: dec_packet(d)?,
            cycle: d.u64()?,
            reason: dec_drop_reason(d)?,
            recoverable: d.bool()?,
        });
    }
    fs.dropped = dropped;
    fs.counters = dec_fault_counters(d)?;
    fs.error = if d.bool()? {
        Some(UnrecoverableFault {
            link: LinkId(d.usize()?),
            src: RouterId(d.usize()?),
            dst: RouterId(d.usize()?),
            attempts: d.u32()?,
            cycle: d.u64()?,
            packet: dec_opt_usize(d)?.map(PacketId),
        })
    } else {
        None
    };
    fs.routing_stale = d.bool()?;
    let has_e2e = d.bool()?;
    match (&mut fs.e2e, has_e2e) {
        (None, false) => {}
        (Some(_), false) | (None, true) => {
            return Err(CheckpointError::Malformed("e2e presence"));
        }
        (Some(e2e), true) => {
            let ns = d.len(8)?;
            if ns != e2e.sources.len() {
                return Err(CheckpointError::Malformed("e2e source count"));
            }
            for s in &mut e2e.sources {
                let next_seq = d.u64()?;
                let nr = d.len(16)?;
                let mut retained = BTreeMap::new();
                for _ in 0..nr {
                    let seq = d.u64()?;
                    retained.insert(
                        seq,
                        Retained {
                            dst: NodeId(d.usize()?),
                            size: Bits(d.u32()?),
                            class: dec_class(d)?,
                            tag: d.u64()?,
                            measured: d.bool()?,
                            first_birth: d.u64()?,
                            attempts: d.u32()?,
                            current: PacketId(d.usize()?),
                            current_alive: d.bool()?,
                        },
                    );
                }
                let contig = d.u64()?;
                let nsp = d.len(8)?;
                let mut sparse = BTreeSet::new();
                for _ in 0..nsp {
                    sparse.insert(d.u64()?);
                }
                *s = SourceE2e {
                    next_seq,
                    retained,
                    contig,
                    sparse,
                };
            }
            let nbp = d.len(24)?;
            let mut by_packet = HashMap::with_capacity(nbp);
            for _ in 0..nbp {
                let k = PacketId(d.usize()?);
                let n = NodeId(d.usize()?);
                let seq = d.u64()?;
                by_packet.insert(k, (n, seq));
            }
            e2e.by_packet = by_packet;
            let nz = d.len(8)?;
            let mut zombies = HashSet::with_capacity(nz);
            for _ in 0..nz {
                zombies.insert(PacketId(d.usize()?));
            }
            e2e.zombies = zombies;
            e2e.counters = dec_recovery_counters(d)?;
        }
    }
    Ok(fs)
}

// --------------------------------------------------------------------------
// Network state capture / restore
// --------------------------------------------------------------------------

impl Network {
    /// Appends the engine's complete dynamic state to `e`.
    ///
    /// Structural state derivable from the configuration (topology graph,
    /// link lane counts, buffer capacities) is *not* written; the restoring
    /// side rebuilds it via [`Network::new`] and
    /// [`Network::decode_state`] overwrites only what evolves.
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        e.sec(SEC_GLOBALS);
        e.u64(self.now);
        e.usize(self.next_packet);
        e.bool(self.measuring);
        e.bool(self.record_packets);

        e.sec(SEC_ROUTERS);
        e.usize(self.routers.len());
        for r in &self.routers {
            for port in &r.inputs {
                for vc in port {
                    e.usize(vc.fifo.len());
                    for f in &vc.fifo {
                        enc_flit(e, f);
                    }
                    enc_route(e, &vc.route);
                    enc_opt_usize(e, vc.out_vc.map(VcId::index));
                    e.bool(vc.in_escape_grant);
                    e.u32(vc.sent_on_grant);
                    e.u32(vc.head_wait);
                    enc_opt_usize(e, vc.holder.map(PacketId::index));
                }
            }
            for out in &r.outputs {
                e.usize(out.vcs.len());
                for ov in &out.vcs {
                    match ov.owner {
                        None => e.bool(false),
                        Some((p, v)) => {
                            e.bool(true);
                            e.usize(p.index());
                            e.usize(v.index());
                        }
                    }
                    e.u32(ov.credits);
                }
                enc_arb(e, &out.va_arb);
                enc_arb(e, &out.sa_primary);
                enc_arb(e, &out.sa_secondary);
            }
            for a in &r.sa_stage1 {
                enc_arb(e, a);
            }
            e.u32(r.occupancy);
            e.u32(r.busy_vcs);
        }

        e.sec(SEC_NODES);
        e.usize(self.nodes.len());
        for n in &self.nodes {
            e.usize(n.queue.len());
            for p in &n.queue {
                enc_packet(e, p);
            }
            match &n.sending {
                None => e.bool(false),
                Some(s) => {
                    e.bool(true);
                    e.usize(s.vc.index());
                    e.usize(s.flits.len());
                    for f in &s.flits {
                        enc_flit(e, f);
                    }
                }
            }
            e.usize(n.vcs.len());
            for ov in &n.vcs {
                match ov.owner {
                    None => e.bool(false),
                    Some((p, v)) => {
                        e.bool(true);
                        e.usize(p.index());
                        e.usize(v.index());
                    }
                }
                e.u32(ov.credits);
            }
            enc_arb(e, &n.rr_vc);
        }

        e.sec(SEC_WHEEL);
        for slot in &self.wheel {
            e.usize(slot.len());
            for ev in slot {
                enc_event(e, ev);
            }
        }

        e.sec(SEC_IN_FLIGHT);
        let mut in_flight: Vec<(&PacketId, &PacketMeta)> = self.in_flight.iter().collect();
        in_flight.sort_by_key(|&(k, _)| k);
        e.usize(in_flight.len());
        for (_, m) in in_flight {
            enc_packet(e, &m.packet);
            e.u64(m.inject);
            e.u32(m.received);
            e.u32(m.total);
            e.bool(m.measured);
        }

        e.sec(SEC_DELIVERED);
        e.usize(self.delivered.len());
        for dlv in &self.delivered {
            enc_packet(e, &dlv.packet);
            e.u64(dlv.inject);
            e.u64(dlv.retire);
        }

        e.sec(SEC_STATS);
        let s = &self.stats;
        e.u64(s.cycles);
        e.u64(s.packets_offered);
        e.u64(s.packets_retired);
        e.u64(s.flits_retired);
        enc_agg(e, &s.latency);
        for a in &s.latency_by_class {
            enc_agg(e, a);
        }
        enc_dist(e, &s.latency_dist);
        for dist in &s.dist_by_class {
            enc_dist(e, dist);
        }
        e.u64s(&s.buffer_occ_integral);
        e.u64s(&s.vc_busy_integral);
        e.usize(s.records.len());
        for r in &s.records {
            enc_record(e, r);
        }
        e.usize(s.links.len());
        for l in &s.links {
            e.u64(l.flits);
            e.u64(l.busy_cycles);
            e.u64(l.dual_cycles);
        }
        e.usize(s.routers.len());
        for r in &s.routers {
            e.u64(r.buffer_writes);
            e.u64(r.buffer_reads);
            e.u64(r.xbar_flits);
            e.u64(r.sa1_arbs);
            e.u64(r.sa2_arbs);
            e.u64(r.va_grants);
        }

        e.sec(SEC_ROUTING);
        enc_routing(e, &self.cfg.routing);

        e.sec(SEC_FAULTS);
        match &self.faults {
            None => e.bool(false),
            Some(fs) => {
                e.bool(true);
                enc_faults(e, fs);
            }
        }

        e.sec(SEC_EPOCHS);
        match &self.epochs {
            None => e.bool(false),
            Some(rec) => {
                e.bool(true);
                e.u64(rec.every);
                e.u64(rec.epoch_start);
                e.u64s(&rec.occ_integral);
                e.u64s(&rec.busy_integral);
                e.u64s(&rec.link_flits);
                e.u64(rec.injected);
                e.u64(rec.ejected);
                enc_dist(e, &rec.dist);
                e.usize(rec.samples.len());
                for smp in &rec.samples {
                    e.u64(smp.start);
                    e.u64(smp.end);
                    e.u64(smp.injected);
                    e.u64(smp.ejected);
                    for v in [&smp.buffer_occ, &smp.vc_busy, &smp.link_util] {
                        e.usize(v.len());
                        for &x in v.iter() {
                            e.f64(x);
                        }
                    }
                    for p in [
                        &smp.latency.total,
                        &smp.latency.queuing,
                        &smp.latency.blocking,
                        &smp.latency.transfer,
                    ] {
                        e.u64(p.p50);
                        e.u64(p.p95);
                        e.u64(p.p99);
                    }
                }
            }
        }
    }

    /// Overwrites this network's dynamic state from a stream written by
    /// [`Network::encode_state`]. The network must have been freshly built
    /// via [`Network::new`] from the same configuration the checkpoint was
    /// taken under (the checkpoint header's config hash enforces this at
    /// the file level); fault state, routing tables and epoch recorders are
    /// reconstructed entirely from the stream.
    ///
    /// # Errors
    /// [`CheckpointError::Malformed`] naming the failing section, or
    /// [`CheckpointError::Truncated`] when the stream ends early. The
    /// network is left in an unspecified (but memory-safe) state on error;
    /// discard it.
    pub(crate) fn decode_state(&mut self, d: &mut Dec) -> Result<(), CheckpointError> {
        d.sec(SEC_GLOBALS, "globals")?;
        self.now = d.u64()?;
        self.next_packet = d.usize()?;
        self.measuring = d.bool()?;
        self.record_packets = d.bool()?;

        d.sec(SEC_ROUTERS, "routers")?;
        let nr = d.len(1)?;
        if nr != self.routers.len() {
            return Err(CheckpointError::Malformed("router count"));
        }
        for r in &mut self.routers {
            for port in &mut r.inputs {
                for vc in port {
                    let nf = d.len(8)?;
                    let mut fifo = VecDeque::with_capacity(nf);
                    for _ in 0..nf {
                        fifo.push_back(dec_flit(d)?);
                    }
                    vc.fifo = fifo;
                    vc.route = dec_route(d)?;
                    vc.out_vc = dec_opt_usize(d)?.map(VcId);
                    vc.in_escape_grant = d.bool()?;
                    vc.sent_on_grant = d.u32()?;
                    vc.head_wait = d.u32()?;
                    vc.holder = dec_opt_usize(d)?.map(PacketId);
                }
            }
            for out in &mut r.outputs {
                let nv = d.len(1)?;
                if nv != out.vcs.len() {
                    return Err(CheckpointError::Malformed("output vc count"));
                }
                for ov in &mut out.vcs {
                    ov.owner = if d.bool()? {
                        Some((PortId(d.usize()?), VcId(d.usize()?)))
                    } else {
                        None
                    };
                    ov.credits = d.u32()?;
                }
                out.va_arb = dec_arb(d)?;
                out.sa_primary = dec_arb(d)?;
                out.sa_secondary = dec_arb(d)?;
            }
            for a in &mut r.sa_stage1 {
                *a = dec_arb(d)?;
            }
            r.occupancy = d.u32()?;
            r.busy_vcs = d.u32()?;
        }

        d.sec(SEC_NODES, "nodes")?;
        let nn = d.len(1)?;
        if nn != self.nodes.len() {
            return Err(CheckpointError::Malformed("node count"));
        }
        for n in &mut self.nodes {
            let nq = d.len(8)?;
            let mut queue = VecDeque::with_capacity(nq);
            for _ in 0..nq {
                queue.push_back(dec_packet(d)?);
            }
            n.queue = queue;
            n.sending = if d.bool()? {
                let vc = VcId(d.usize()?);
                let nf = d.len(8)?;
                let mut flits = VecDeque::with_capacity(nf);
                for _ in 0..nf {
                    flits.push_back(dec_flit(d)?);
                }
                Some(Sending { vc, flits })
            } else {
                None
            };
            let nv = d.len(1)?;
            if nv != n.vcs.len() {
                return Err(CheckpointError::Malformed("node vc count"));
            }
            for ov in &mut n.vcs {
                ov.owner = if d.bool()? {
                    Some((PortId(d.usize()?), VcId(d.usize()?)))
                } else {
                    None
                };
                ov.credits = d.u32()?;
            }
            n.rr_vc = dec_arb(d)?;
        }

        d.sec(SEC_WHEEL, "wheel")?;
        for slot in &mut self.wheel {
            let ne = d.len(1)?;
            let mut evs = Vec::with_capacity(ne);
            for _ in 0..ne {
                evs.push(dec_event(d)?);
            }
            *slot = evs;
        }
        debug_assert_eq!(self.wheel.len(), WHEEL);

        d.sec(SEC_IN_FLIGHT, "in_flight")?;
        let nif = d.len(8)?;
        let mut in_flight = HashMap::with_capacity(nif);
        for _ in 0..nif {
            let packet = dec_packet(d)?;
            let meta = PacketMeta {
                packet,
                inject: d.u64()?,
                received: d.u32()?,
                total: d.u32()?,
                measured: d.bool()?,
            };
            in_flight.insert(packet.id, meta);
        }
        self.in_flight = in_flight;

        d.sec(SEC_DELIVERED, "delivered")?;
        let ndl = d.len(8)?;
        let mut delivered = Vec::with_capacity(ndl);
        for _ in 0..ndl {
            delivered.push(Delivered {
                packet: dec_packet(d)?,
                inject: d.u64()?,
                retire: d.u64()?,
            });
        }
        self.delivered = delivered;

        d.sec(SEC_STATS, "stats")?;
        let s = &mut self.stats;
        s.cycles = d.u64()?;
        s.packets_offered = d.u64()?;
        s.packets_retired = d.u64()?;
        s.flits_retired = d.u64()?;
        s.latency = dec_agg(d)?;
        for a in &mut s.latency_by_class {
            *a = dec_agg(d)?;
        }
        s.latency_dist = dec_dist(d)?;
        for dist in &mut s.dist_by_class {
            *dist = dec_dist(d)?;
        }
        let occ = d.u64s()?;
        let busy = d.u64s()?;
        if occ.len() != s.buffer_occ_integral.len() || busy.len() != s.vc_busy_integral.len() {
            return Err(CheckpointError::Malformed("stats integrals"));
        }
        s.buffer_occ_integral = occ;
        s.vc_busy_integral = busy;
        let nrec = d.len(8)?;
        let mut records = Vec::with_capacity(nrec);
        for _ in 0..nrec {
            records.push(dec_record(d)?);
        }
        s.records = records;
        let nl = d.len(24)?;
        if nl != s.links.len() {
            return Err(CheckpointError::Malformed("stats link count"));
        }
        for l in &mut s.links {
            *l = LinkEvents {
                flits: d.u64()?,
                busy_cycles: d.u64()?,
                dual_cycles: d.u64()?,
            };
        }
        let nre = d.len(48)?;
        if nre != s.routers.len() {
            return Err(CheckpointError::Malformed("stats router count"));
        }
        for r in &mut s.routers {
            *r = RouterEvents {
                buffer_writes: d.u64()?,
                buffer_reads: d.u64()?,
                xbar_flits: d.u64()?,
                sa1_arbs: d.u64()?,
                sa2_arbs: d.u64()?,
                va_grants: d.u64()?,
            };
        }

        d.sec(SEC_ROUTING, "routing")?;
        self.cfg.routing = dec_routing(d)?;

        d.sec(SEC_FAULTS, "faults")?;
        self.faults = if d.bool()? {
            Some(Box::new(dec_faults(d, self)?))
        } else {
            None
        };

        d.sec(SEC_EPOCHS, "epochs")?;
        self.epochs = if d.bool()? {
            let every = d.u64()?;
            if every == 0 {
                return Err(CheckpointError::Malformed("epoch length"));
            }
            let caps = self.routers.iter().map(|r| u64::from(r.capacity)).collect();
            let vcs = self
                .routers
                .iter()
                .map(|r| u64::from(r.total_vcs))
                .collect();
            let lanes = self.link_lanes.iter().map(|&l| l as u64).collect();
            let mut rec = EpochRecorder::new(every, caps, vcs, lanes);
            rec.epoch_start = d.u64()?;
            let occ = d.u64s()?;
            let busy = d.u64s()?;
            let flits = d.u64s()?;
            if occ.len() != rec.occ_integral.len()
                || busy.len() != rec.busy_integral.len()
                || flits.len() != rec.link_flits.len()
            {
                return Err(CheckpointError::Malformed("epoch integrals"));
            }
            rec.occ_integral = occ;
            rec.busy_integral = busy;
            rec.link_flits = flits;
            rec.injected = d.u64()?;
            rec.ejected = d.u64()?;
            rec.dist = dec_dist(d)?;
            let nsmp = d.len(32)?;
            let mut samples = Vec::with_capacity(nsmp);
            for _ in 0..nsmp {
                let start = d.u64()?;
                let end = d.u64()?;
                let injected = d.u64()?;
                let ejected = d.u64()?;
                let mut vecs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
                for v in &mut vecs {
                    let n = d.len(8)?;
                    for _ in 0..n {
                        v.push(d.f64()?);
                    }
                }
                let [buffer_occ, vc_busy, link_util] = vecs;
                let mut pctls: [Pctls; 4] = [Pctls::default(); 4];
                for p in &mut pctls {
                    *p = Pctls {
                        p50: d.u64()?,
                        p95: d.u64()?,
                        p99: d.u64()?,
                    };
                }
                let [total, queuing, blocking, transfer] = pctls;
                samples.push(crate::metrics::EpochSample {
                    start,
                    end,
                    injected,
                    ejected,
                    buffer_occ,
                    vc_busy,
                    link_util,
                    latency: LatencyPctls {
                        total,
                        queuing,
                        blocking,
                        transfer,
                    },
                });
            }
            rec.samples = samples;
            Some(Box::new(rec))
        } else {
            None
        };

        // Rebuild derived scheduler state. Neither the per-port occupancy
        // counters nor the wake set are serialized — both are functions of
        // the decoded buffers — which keeps the checkpoint byte format
        // independent of the engine mode.
        for router in &mut self.routers {
            let inputs = &router.inputs;
            for (p, occ) in router.port_occ.iter_mut().enumerate() {
                *occ = inputs[p].iter().map(|vc| vc.fifo.len() as u32).sum();
            }
        }
        let routers = &self.routers;
        self.sched.rebuild(|r| routers[r].occupancy > 0);

        Ok(())
    }

    /// FNV-1a-64 fingerprint of the encoded engine state — the per-cycle
    /// trajectory hash the divergence bisector compares.
    pub(crate) fn state_digest(&self) -> u64 {
        let mut e = Enc::new();
        self.encode_state(&mut e);
        fnv1a64(&e.into_bytes())
    }

    /// Bytes the installed trace sink has emitted so far (`None` without a
    /// sink, or when the sink does not count — see
    /// [`crate::trace::TraceSink::bytes_written`]).
    pub(crate) fn trace_bytes_written(&self) -> Option<u64> {
        self.tracer.as_deref().and_then(TraceSink::bytes_written)
    }

    /// Walks two networks field by field and reports up to `limit` places
    /// where their dynamic state differs. `self` is treated as the
    /// reference ("expected"), `other` as the candidate ("actual").
    ///
    /// An empty result means the states are behaviourally identical (their
    /// [`Network::state_digest`]s agree up to hash collisions).
    pub(crate) fn divergences(&self, other: &Network, limit: usize) -> Vec<Divergence> {
        let mut out = Vec::new();
        let mut push = |loc: String, field: &str, exp: String, act: String| {
            if out.len() < limit && exp != act {
                out.push(Divergence {
                    location: loc,
                    field: field.to_owned(),
                    expected: exp,
                    actual: act,
                });
            }
        };

        push(
            "global".into(),
            "now",
            self.now.to_string(),
            other.now.to_string(),
        );
        push(
            "global".into(),
            "next_packet",
            self.next_packet.to_string(),
            other.next_packet.to_string(),
        );
        push(
            "global".into(),
            "measuring",
            self.measuring.to_string(),
            other.measuring.to_string(),
        );
        push(
            "global".into(),
            "in_flight",
            self.in_flight.len().to_string(),
            other.in_flight.len().to_string(),
        );

        for (ri, (a, b)) in self.routers.iter().zip(&other.routers).enumerate() {
            for (pi, (pa, pb)) in a.inputs.iter().zip(&b.inputs).enumerate() {
                for (vi, (va, vb)) in pa.iter().zip(pb).enumerate() {
                    let loc = format!("r{ri}.p{pi}.v{vi}");
                    let fifo = |vc: &super::InputVc| {
                        vc.fifo
                            .iter()
                            .map(|f| format!("{}#{}", f.packet, f.seq))
                            .collect::<Vec<_>>()
                            .join(",")
                    };
                    push(loc.clone(), "fifo", fifo(va), fifo(vb));
                    push(
                        loc.clone(),
                        "route",
                        format!("{:?}", va.route),
                        format!("{:?}", vb.route),
                    );
                    push(
                        loc.clone(),
                        "out_vc",
                        format!("{:?}", va.out_vc),
                        format!("{:?}", vb.out_vc),
                    );
                    push(
                        loc.clone(),
                        "holder",
                        format!("{:?}", va.holder),
                        format!("{:?}", vb.holder),
                    );
                    push(
                        loc.clone(),
                        "head_wait",
                        va.head_wait.to_string(),
                        vb.head_wait.to_string(),
                    );
                    push(
                        loc,
                        "sent_on_grant",
                        va.sent_on_grant.to_string(),
                        vb.sent_on_grant.to_string(),
                    );
                }
            }
            for (pi, (oa, ob)) in a.outputs.iter().zip(&b.outputs).enumerate() {
                for (vi, (va, vb)) in oa.vcs.iter().zip(&ob.vcs).enumerate() {
                    let loc = format!("r{ri}.out{pi}.v{vi}");
                    push(
                        loc.clone(),
                        "owner",
                        format!("{:?}", va.owner),
                        format!("{:?}", vb.owner),
                    );
                    push(
                        loc,
                        "credits",
                        va.credits.to_string(),
                        vb.credits.to_string(),
                    );
                }
                let loc = format!("r{ri}.out{pi}");
                push(
                    loc.clone(),
                    "va_arb",
                    oa.va_arb.pointer().to_string(),
                    ob.va_arb.pointer().to_string(),
                );
                push(
                    loc,
                    "sa_arb",
                    format!("{}/{}", oa.sa_primary.pointer(), oa.sa_secondary.pointer()),
                    format!("{}/{}", ob.sa_primary.pointer(), ob.sa_secondary.pointer()),
                );
            }
            push(
                format!("r{ri}"),
                "occupancy",
                a.occupancy.to_string(),
                b.occupancy.to_string(),
            );
        }

        for (ni, (a, b)) in self.nodes.iter().zip(&other.nodes).enumerate() {
            let loc = format!("n{ni}");
            push(
                loc.clone(),
                "queue",
                a.queue.len().to_string(),
                b.queue.len().to_string(),
            );
            let send = |n: &NodeState| match &n.sending {
                None => "idle".to_owned(),
                Some(s) => format!("vc{} x{}", s.vc.index(), s.flits.len()),
            };
            push(loc.clone(), "sending", send(a), send(b));
            let credits = |n: &NodeState| {
                n.vcs
                    .iter()
                    .map(|v| v.credits.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            push(loc, "credits", credits(a), credits(b));
        }

        for (wi, (a, b)) in self.wheel.iter().zip(&other.wheel).enumerate() {
            let digest = |slot: &[Event]| {
                let mut e = Enc::new();
                for ev in slot {
                    enc_event(&mut e, ev);
                }
                format!("{} events ({:016x})", slot.len(), fnv1a64(&e.into_bytes()))
            };
            push(format!("wheel[{wi}]"), "events", digest(a), digest(b));
        }

        push(
            "stats".into(),
            "packets_retired",
            self.stats.packets_retired.to_string(),
            other.stats.packets_retired.to_string(),
        );
        push(
            "stats".into(),
            "flits_retired",
            self.stats.flits_retired.to_string(),
            other.stats.flits_retired.to_string(),
        );
        push(
            "stats".into(),
            "latency_total",
            self.stats.latency.total.to_string(),
            other.stats.latency.total.to_string(),
        );

        let fault_digest = |n: &Network| match &n.faults {
            None => "none".to_owned(),
            Some(fs) => {
                let mut e = Enc::new();
                enc_faults(&mut e, fs);
                format!("{:016x}", fnv1a64(&e.into_bytes()))
            }
        };
        push(
            "faults".into(),
            "state",
            fault_digest(self),
            fault_digest(other),
        );

        out
    }
}

use crate::trace::TraceSink;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::fault::{FaultKind, HardFault, RecoveryPolicy, RetryPolicy};
    use crate::topology::TopologyKind;

    fn mesh4() -> NetworkConfig {
        NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 4,
                height: 4,
            },
            crate::config::RouterCfg::BASELINE,
            Bits(192),
            2.2,
        )
    }

    fn stepped(cycles: u64) -> Network {
        let mut net = Network::new(mesh4()).unwrap();
        net.enqueue(NodeId(0), NodeId(15), Bits(1024), PacketClass::Data, 0);
        net.enqueue(NodeId(5), NodeId(10), Bits(1024), PacketClass::Control, 1);
        for _ in 0..cycles {
            net.step();
        }
        net
    }

    fn roundtrip(net: &Network, cfg: NetworkConfig) -> Network {
        let mut e = Enc::new();
        net.encode_state(&mut e);
        let bytes = e.into_bytes();
        let mut fresh = Network::new(cfg).unwrap();
        let mut d = Dec::new(&bytes);
        fresh.decode_state(&mut d).unwrap();
        assert!(d.is_done(), "decoder must consume the whole stream");
        fresh
    }

    #[test]
    fn mid_flight_state_roundtrips_exactly() {
        let net = stepped(5);
        assert!(net.in_flight() > 0, "packets must be mid-flight");
        let restored = roundtrip(&net, mesh4());
        assert_eq!(net.state_digest(), restored.state_digest());
        assert!(net.divergences(&restored, 64).is_empty());
    }

    #[test]
    fn restored_network_continues_identically() {
        let mut a = stepped(4);
        let mut b = roundtrip(&a, mesh4());
        for _ in 0..200 {
            a.step();
            b.step();
            assert_eq!(a.state_digest(), b.state_digest(), "cycle {}", a.now());
        }
        assert_eq!(
            a.drain_delivered().len(),
            b.drain_delivered().len(),
            "same deliveries"
        );
    }

    #[test]
    fn faulted_network_roundtrips_with_recovery_state() {
        let cfg = mesh4();
        let mut plan = FaultPlan::transient(1e-4, 99);
        plan.retry = RetryPolicy {
            max_attempts: 8,
            timeout: 32,
        };
        plan.hard.push(HardFault {
            cycle: 6,
            kind: FaultKind::Router(RouterId(15)),
        });
        plan.recovery = Some(RecoveryPolicy::default());
        let mut net = Network::with_faults(cfg.clone(), plan).unwrap();
        net.enqueue(NodeId(0), NodeId(15), Bits(1024), PacketClass::Data, 0);
        net.enqueue(NodeId(3), NodeId(12), Bits(1024), PacketClass::Data, 1);
        for _ in 0..12 {
            net.step();
        }
        let mut restored = roundtrip(&net, cfg);
        assert_eq!(net.state_digest(), restored.state_digest());
        for _ in 0..50 {
            net.step();
            restored.step();
            assert_eq!(net.state_digest(), restored.state_digest());
        }
    }

    #[test]
    fn divergence_names_the_perturbed_field() {
        let net = stepped(5);
        let mut other = roundtrip(&net, mesh4());
        // Perturb one credit counter on the restored copy.
        'outer: for r in &mut other.routers {
            for out in &mut r.outputs {
                if let Some(ov) = out.vcs.first_mut() {
                    ov.credits += 1;
                    break 'outer;
                }
            }
        }
        let divs = net.divergences(&other, 16);
        assert!(!divs.is_empty());
        assert!(
            divs.iter().any(|dv| dv.field == "credits"),
            "credit perturbation must be named: {divs:?}"
        );
        assert_ne!(net.state_digest(), other.state_digest());
    }

    #[test]
    fn epoch_recorder_roundtrips() {
        let mut net = Network::new(mesh4()).unwrap();
        net.enable_epochs(8);
        net.enqueue(NodeId(0), NodeId(15), Bits(1024), PacketClass::Data, 0);
        for _ in 0..30 {
            net.step();
        }
        let mut restored = roundtrip(&net, mesh4());
        for _ in 0..30 {
            net.step();
            restored.step();
        }
        assert_eq!(net.take_epochs(), restored.take_epochs());
    }
}
