//! Network-level power evaluation: combines the fitted router model, the
//! component share model and measured per-router activity (from simulation
//! statistics) into the power numbers the paper plots (Figs. 7c, 8b, 9c,
//! 11c, 11d).
//!
//! Following the paper's footnote 3, the Table 1 router powers are profiles
//! at a 50% activity factor; during simulation each router's power is
//! computed from its *actual* utilization. Every component keeps a constant
//! leakage floor (20% of its calibration-point power) plus a dynamic part
//! that scales linearly with its measured event rate.

use serde::{Deserialize, Serialize};

use heteronoc_noc::config::NetworkConfig;
use heteronoc_noc::stats::NetStats;
use heteronoc_noc::topology::{PortKind, TopologyGraph};

use crate::breakdown::{router_shares, PowerBreakdown};
use crate::model::AnalyticModel;
use crate::table1::BASELINE;

/// Fraction of each component's calibration power that is leakage
/// (activity-independent).
pub const LEAKAGE_FRACTION: f64 = 0.20;

/// Activity factor the Table 1 profiles were taken at.
pub const CALIBRATION_ACTIVITY: f64 = 0.50;

/// Network power evaluator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkPower {
    model: AnalyticModel,
    leakage_fraction: f64,
}

/// Result of a network power evaluation.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Power of each router (including its share of outgoing links), watts.
    pub per_router_w: Vec<f64>,
    /// Component aggregate across the network.
    pub breakdown: PowerBreakdown,
}

impl PowerReport {
    /// Total network power in watts.
    pub fn total_w(&self) -> f64 {
        self.breakdown.total()
    }
}

/// Per-component activity factors of one router (event rate per port per
/// cycle; the calibration point is 0.5 on every axis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Buffer access rate ((writes+reads)/2 per port-cycle).
    pub buffers: f64,
    /// Crossbar flit rate per port-cycle.
    pub crossbar: f64,
    /// Arbitration decision rate (normalized; ~2 decisions per flit).
    pub arbiters: f64,
    /// Outgoing-link flit rate per port-cycle.
    pub links: f64,
}

impl Activity {
    /// Uniform activity on all axes.
    pub fn uniform(a: f64) -> Self {
        Self {
            buffers: a,
            crossbar: a,
            arbiters: a,
            links: a,
        }
    }

    /// Extracts per-router activities from simulation statistics.
    pub fn from_stats(stats: &NetStats, graph: &TopologyGraph, router: usize) -> Self {
        if stats.cycles == 0 {
            return Self::default();
        }
        let ports = graph.routers()[router].ports.len() as f64;
        let denom = stats.cycles as f64 * ports;
        let ev = &stats.routers[router];
        let out_link_flits: u64 = graph.routers()[router]
            .ports
            .iter()
            .filter_map(|p| match p.kind {
                PortKind::Link { out, .. } => Some(stats.links[out.index()].flits),
                PortKind::Local { .. } => None,
            })
            .sum();
        Self {
            buffers: (ev.buffer_writes + ev.buffer_reads) as f64 / (2.0 * denom),
            crossbar: ev.xbar_flits as f64 / denom,
            arbiters: (ev.sa1_arbs + ev.sa2_arbs + ev.va_grants) as f64 / (2.0 * denom),
            links: out_link_flits as f64 / denom,
        }
    }
}

impl NetworkPower {
    /// Evaluator calibrated to the paper's Table 1.
    pub fn paper_calibrated() -> Self {
        Self {
            model: AnalyticModel::paper_calibrated(),
            leakage_fraction: LEAKAGE_FRACTION,
        }
    }

    /// The underlying analytical model.
    pub fn model(&self) -> &AnalyticModel {
        &self.model
    }

    /// Power of one router organization at the given per-component
    /// activity, in watts. `ports` scales the 5-port calibration linearly.
    pub fn router_power(
        &self,
        vcs: usize,
        width_bits: u32,
        depth: usize,
        ports: usize,
        freq_ghz: f64,
        activity: Activity,
    ) -> PowerBreakdown {
        let p50 = self.model.power_at_50(vcs, width_bits, freq_ghz)
            * (ports as f64 / BASELINE.ports as f64);
        let shares = router_shares(vcs, width_bits, depth);
        let lf = self.leakage_fraction;
        let dyn_scale = |a: f64| lf + (1.0 - lf) * (a / CALIBRATION_ACTIVITY);
        PowerBreakdown {
            buffers: shares[0] * p50 * dyn_scale(activity.buffers),
            crossbar: shares[1] * p50 * dyn_scale(activity.crossbar),
            arbiters: shares[2] * p50 * dyn_scale(activity.arbiters),
            links: shares[3] * p50 * dyn_scale(activity.links),
        }
    }

    /// Evaluates network power from measured statistics.
    ///
    /// Each router's crossbar/buffer width is its local-port width (192b in
    /// the homogeneous and `+B` networks; 128b/256b for small/big routers in
    /// the `+BL` networks) and its activity comes from its own counters.
    pub fn evaluate(
        &self,
        cfg: &NetworkConfig,
        graph: &TopologyGraph,
        stats: &NetStats,
    ) -> PowerReport {
        let mut per_router_w = Vec::with_capacity(graph.num_routers());
        let mut total = PowerBreakdown::default();
        for r in 0..graph.num_routers() {
            let act = Activity::from_stats(stats, graph, r);
            let bd = self.router_power(
                cfg.routers[r].vcs_per_port,
                cfg.local_width(r).get(),
                cfg.routers[r].buffer_depth,
                graph.routers()[r].ports.len(),
                cfg.frequency_ghz,
                act,
            );
            per_router_w.push(bd.total());
            total += bd;
        }
        PowerReport {
            per_router_w,
            breakdown: total,
        }
    }

    /// Static estimate at a uniform activity factor (no simulation), used
    /// for budget checks and design-space exploration.
    pub fn evaluate_at_activity(
        &self,
        cfg: &NetworkConfig,
        graph: &TopologyGraph,
        activity: f64,
    ) -> PowerReport {
        let mut per_router_w = Vec::with_capacity(graph.num_routers());
        let mut total = PowerBreakdown::default();
        for r in 0..graph.num_routers() {
            let bd = self.router_power(
                cfg.routers[r].vcs_per_port,
                cfg.local_width(r).get(),
                cfg.routers[r].buffer_depth,
                graph.routers()[r].ports.len(),
                cfg.frequency_ghz,
                Activity::uniform(activity),
            );
            per_router_w.push(bd.total());
            total += bd;
        }
        PowerReport {
            per_router_w,
            breakdown: total,
        }
    }
}

impl Default for NetworkPower {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::{BIG, SMALL};
    use heteronoc_noc::config::{LinkWidths, RouterCfg};
    use heteronoc_noc::topology::TopologyKind;
    use heteronoc_noc::types::Bits;

    #[test]
    fn router_power_at_calibration_matches_table1() {
        let np = NetworkPower::paper_calibrated();
        for p in [&BASELINE, &SMALL, &BIG] {
            let bd = np.router_power(
                p.vcs,
                p.width_bits,
                p.buffer_depth,
                p.ports,
                p.freq_ghz,
                Activity::uniform(CALIBRATION_ACTIVITY),
            );
            let err = (bd.total() - p.power_w).abs() / p.power_w;
            assert!(
                err < 0.02,
                "{}: {:.4} vs {:.4}",
                p.name,
                bd.total(),
                p.power_w
            );
        }
    }

    #[test]
    fn leakage_floor_at_zero_activity() {
        let np = NetworkPower::paper_calibrated();
        let zero = np.router_power(3, 192, 5, 5, 2.2, Activity::uniform(0.0));
        let cal = np.router_power(3, 192, 5, 5, 2.2, Activity::uniform(0.5));
        assert!((zero.total() / cal.total() - LEAKAGE_FRACTION).abs() < 1e-9);
    }

    #[test]
    fn power_scales_linearly_with_activity() {
        let np = NetworkPower::paper_calibrated();
        let p25 = np
            .router_power(3, 192, 5, 5, 2.2, Activity::uniform(0.25))
            .total();
        let p50 = np
            .router_power(3, 192, 5, 5, 2.2, Activity::uniform(0.5))
            .total();
        let p100 = np
            .router_power(3, 192, 5, 5, 2.2, Activity::uniform(1.0))
            .total();
        // Dynamic part is linear: equal increments.
        assert!(((p50 - p25) - (p50 - p25)).abs() < 1e-12);
        assert!(((p100 - p50) - 2.0 * (p50 - p25)).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_network_is_cheaper_at_equal_activity() {
        let np = NetworkPower::paper_calibrated();
        // Homogeneous baseline.
        let homo = NetworkConfig::paper_baseline();
        let homo_g = homo.build_graph();
        let homo_w = np.evaluate_at_activity(&homo, &homo_g, 0.5).total_w();

        // Diagonal-style split: 48 small + 16 big at 2.07 GHz.
        let mut big = vec![false; 64];
        for i in 0..8 {
            big[i * 8 + i] = true;
            big[i * 8 + (7 - i)] = true;
        }
        let mut hetero = NetworkConfig::paper_baseline();
        hetero.frequency_ghz = 2.07;
        hetero.flit_width = Bits(128);
        hetero.routers = big
            .iter()
            .map(|&b| if b { RouterCfg::BIG } else { RouterCfg::SMALL })
            .collect();
        hetero.link_widths = LinkWidths::ByBigRouters {
            big,
            narrow: Bits(128),
            wide: Bits(256),
        };
        let het_g = hetero.build_graph();
        let het_w = np.evaluate_at_activity(&hetero, &het_g, 0.5).total_w();

        let reduction = 1.0 - het_w / homo_w;
        // Expect roughly the paper's 20-30% power reduction band.
        assert!(
            (0.10..0.40).contains(&reduction),
            "reduction {:.1}% out of band (homo {homo_w:.1} W, hetero {het_w:.1} W)",
            reduction * 100.0
        );
    }

    #[test]
    fn evaluate_handles_empty_stats() {
        let np = NetworkPower::paper_calibrated();
        let cfg = NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 4,
                height: 4,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        );
        let g = cfg.build_graph();
        let stats = heteronoc_noc::stats::NetStats::default();
        // Default stats has empty vectors; build a real one via a network.
        let _ = stats;
        let net = heteronoc_noc::network::Network::new(cfg.clone()).unwrap();
        let report = np.evaluate(&cfg, &g, net.stats());
        // Zero cycles -> all leakage-floor power.
        assert!(report.total_w() > 0.0);
        let static_leak = np.evaluate_at_activity(&cfg, &g, 0.0).total_w();
        assert!((report.total_w() - static_leak).abs() < 1e-9);
    }
}
