//! Graceful-degradation rerouting with the deadlock proof in the loop.
//!
//! When a hard fault kills a link or router mid-run, the engine marks the
//! installed routing stale ([`Network::take_routing_stale`]) and the control
//! layer must regenerate a table around the dead equipment. This module is
//! that control layer: [`verify_degraded_routing`] builds the up*/down*
//! table ([`degraded_routing`]) and *proves it deadlock-free* on the
//! surviving channel-dependency graph before anyone installs it, and
//! [`run_with_degradation`] drives a whole fault campaign — inject, step,
//! reroute on every hard fault, and report per-phase statistics — with the
//! proof gating every reroute.
//!
//! The gate matters: an unproven reroute that happens to close a dependency
//! cycle would wedge the network silently. Here a cyclic regenerated table
//! is a typed [`DegradedRunError::Deadlock`] naming the cycle, never a hang.

use heteronoc_noc::config::NetworkConfig;
use heteronoc_noc::fault::{
    DroppedPacket, FaultCounters, FaultPlan, RecoveryCounters, UnrecoverableFault,
};
use heteronoc_noc::network::{Network, StallReport};
use heteronoc_noc::packet::PacketClass;
use heteronoc_noc::routing::degraded::degraded_routing;
use heteronoc_noc::routing::RoutingKind;
use heteronoc_noc::topology::TopologyGraph;
use heteronoc_noc::types::{Bits, Cycle, LinkId, NodeId, RouterId};

use crate::cdg::{Cdg, EscapeModel};
use crate::error::VerifyError;

/// A degraded routing that passed the CDG acyclicity proof.
#[derive(Clone, Debug)]
pub struct VerifiedDegradedRouting {
    /// The proven table, ready for [`Network::install_routing`].
    pub routing: RoutingKind,
    /// Live router pairs the degraded table cannot connect.
    pub unreachable: Vec<(RouterId, RouterId)>,
    /// Routers cut off from the surviving connected component.
    pub isolated: Vec<RouterId>,
    /// VC-level channels in the verified dependency graph.
    pub channels: usize,
    /// Dependencies proven acyclic.
    pub dependencies: usize,
}

/// Builds an up*/down* routing table for `cfg`'s topology minus the dead
/// equipment and proves it deadlock-free before returning it.
///
/// Unreachable pairs and isolated routers are *not* errors — the engine
/// absorbs and drops their traffic with typed reasons — but they are
/// reported so callers can account for the lost coverage.
///
/// # Errors
/// [`VerifyError::CyclicDependency`] (naming the cycle) if the regenerated
/// table's dependency graph is cyclic; [`VerifyError::Config`] if `cfg`
/// itself is invalid.
pub fn verify_degraded_routing(
    cfg: &NetworkConfig,
    dead_links: &[LinkId],
    dead_routers: &[RouterId],
) -> Result<VerifiedDegradedRouting, VerifyError> {
    let graph = cfg.build_graph();
    verify_degraded_on(&graph, cfg, dead_links, dead_routers)
}

/// [`verify_degraded_routing`] with a pre-built graph (the campaign runner
/// regenerates on every hard fault and need not rebuild the topology).
fn verify_degraded_on(
    graph: &TopologyGraph,
    cfg: &NetworkConfig,
    dead_links: &[LinkId],
    dead_routers: &[RouterId],
) -> Result<VerifiedDegradedRouting, VerifyError> {
    let dr = degraded_routing(graph, dead_links, dead_routers);
    let routing = RoutingKind::FullTable(dr.table);
    let vcs: Vec<usize> = cfg.routers.iter().map(|r| r.vcs_per_port).collect();
    // The degraded table claims whole ports (VcClass::Any, no escape
    // reservation): the proof must hold with every dependency hard.
    let cdg = Cdg::build(graph, &routing, &vcs, EscapeModel::None)?;
    cdg.check_acyclic()?;
    Ok(VerifiedDegradedRouting {
        routing,
        unreachable: dr.unreachable,
        isolated: dr.isolated,
        channels: cdg.num_channels(),
        dependencies: cdg.num_dependencies(),
    })
}

/// One injected packet of a degradation campaign.
#[derive(Clone, Copy, Debug)]
pub struct Injection {
    /// Cycle the packet enters the source queue.
    pub cycle: Cycle,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Payload size.
    pub size: Bits,
}

/// Statistics of one routing phase (the interval between two reroutes).
#[derive(Clone, Copy, Debug)]
pub struct PhaseStats {
    /// First cycle of the phase.
    pub from_cycle: Cycle,
    /// Cycle the phase ended (a reroute, or end of run).
    pub to_cycle: Cycle,
    /// Packets retired during the phase.
    pub delivered: u64,
    /// Packets dropped during the phase.
    pub dropped: u64,
    /// Of those drops, how many were permanent (no retained copy left to
    /// reinject). `dropped - permanent` losses were recovered by the
    /// end-to-end layer in a later phase.
    pub permanent: u64,
    /// Σ (retire − inject) over the phase's deliveries.
    pub latency_cycles: u64,
}

impl PhaseStats {
    /// Mean packet latency of the phase in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.latency_cycles as f64 / self.delivered as f64
            }
        }
    }
}

/// Outcome of a completed degradation campaign.
#[derive(Clone, Debug)]
pub struct DegradedRunReport {
    /// Per-routing-phase statistics, in time order. One entry when no hard
    /// fault fired, one extra entry per reroute.
    pub phases: Vec<PhaseStats>,
    /// Total packets retired.
    pub delivered: u64,
    /// Every packet dropped, with its typed reason. With end-to-end
    /// recovery enabled, entries with `recoverable: true` are transient
    /// (a reinjected copy delivered or will be accounted separately).
    pub dropped: Vec<DroppedPacket>,
    /// Fault-campaign counters from the engine.
    pub counters: FaultCounters,
    /// End-to-end recovery counters (all zero when recovery is disabled).
    pub recovery: RecoveryCounters,
    /// Number of CDG-verified reroutes performed.
    pub reroutes: u32,
    /// Cycle the last packet left the network.
    pub finished_at: Cycle,
    /// Per-delivery latencies in cycles, sorted ascending (so percentile
    /// queries are a direct index). One entry per retired packet.
    pub latencies: Vec<Cycle>,
}

impl DegradedRunReport {
    /// Packets permanently lost (no retained copy could or can deliver
    /// them). Without recovery every drop is permanent.
    pub fn permanent_losses(&self) -> u64 {
        self.dropped.iter().filter(|d| !d.recoverable).count() as u64
    }

    /// Delivered fraction of all packets that reached a final outcome:
    /// `delivered / (delivered + permanent losses)`. 1.0 when nothing was
    /// permanently lost.
    pub fn delivery_ratio(&self) -> f64 {
        let lost = self.permanent_losses();
        if self.delivered + lost == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.delivered as f64 / (self.delivered + lost) as f64
        }
    }

    /// The `p`-th latency percentile in cycles (nearest-rank; `p` in
    /// 0.0..=1.0). 0 when nothing delivered.
    pub fn latency_percentile(&self, p: f64) -> Cycle {
        if self.latencies.is_empty() {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let idx = ((self.latencies.len() as f64 * p).ceil() as usize)
            .saturating_sub(1)
            .min(self.latencies.len() - 1);
        self.latencies[idx]
    }
}

/// Why a degradation campaign could not complete.
#[derive(Clone, Debug)]
pub enum DegradedRunError {
    /// The configuration was rejected by the engine.
    Config(heteronoc_noc::error::ConfigError),
    /// A regenerated routing failed the deadlock proof (cycle named) —
    /// nothing was installed.
    Deadlock(VerifyError),
    /// A link exhausted its retransmission attempts.
    Unrecoverable(UnrecoverableFault),
    /// No forward progress for longer than the stall limit.
    Stalled {
        /// Engine stall report naming the stuck packets.
        report: Box<StallReport>,
        /// Routing phase (reroutes completed so far) in which progress
        /// stopped — phase 0 is the pre-fault table; a stall in phase
        /// `n > 0` happened inside the `n`-th reconfiguration window.
        phase: u32,
        /// First cycle of that phase.
        phase_start: Cycle,
    },
}

impl std::fmt::Display for DegradedRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedRunError::Config(e) => write!(f, "invalid configuration: {e}"),
            DegradedRunError::Deadlock(e) => {
                write!(f, "regenerated routing failed the deadlock proof: {e}")
            }
            DegradedRunError::Unrecoverable(e) => write!(f, "unrecoverable fault: {e}"),
            DegradedRunError::Stalled {
                report,
                phase,
                phase_start,
            } => write!(
                f,
                "campaign stalled in routing phase {phase} (since cycle {phase_start}): {report}"
            ),
        }
    }
}

impl std::error::Error for DegradedRunError {}

/// Runs a full degradation campaign: injects `injections` (any order; they
/// are sorted by cycle), steps the engine, and on every hard fault
/// regenerates, *proves* and installs a degraded table. Returns per-phase
/// statistics plus the engine's drop/fault accounting.
///
/// `stall_limit` bounds the cycles the run may go without a delivery or a
/// drop while packets are in flight (the drain watchdog).
///
/// # Errors
/// See [`DegradedRunError`]; a cyclic regenerated table, exhausted link
/// retries and a stalled drain all surface as typed errors, never hangs.
///
/// # Panics
/// Panics if an injection names an endpoint outside the topology.
pub fn run_with_degradation(
    cfg: NetworkConfig,
    plan: FaultPlan,
    injections: &[Injection],
    stall_limit: Cycle,
) -> Result<DegradedRunReport, DegradedRunError> {
    let graph = cfg.build_graph();
    let cfg_probe = cfg.clone();
    let mut net = Network::with_faults(cfg, plan).map_err(DegradedRunError::Config)?;

    let mut pending: Vec<Injection> = injections.to_vec();
    pending.sort_by_key(|i| i.cycle);
    let mut next = 0usize;

    let mut phases: Vec<PhaseStats> = Vec::new();
    let mut phase = PhaseStats {
        from_cycle: 0,
        to_cycle: 0,
        delivered: 0,
        dropped: 0,
        permanent: 0,
        latency_cycles: 0,
    };
    let mut all_dropped: Vec<DroppedPacket> = Vec::new();
    let mut delivered_total = 0u64;
    let mut reroutes = 0u32;
    let mut last_progress: Cycle = 0;
    let mut finished_at: Cycle = 0;
    let mut last_recovery = RecoveryCounters::default();
    let mut latencies: Vec<Cycle> = Vec::new();

    while next < pending.len() || net.in_flight() > 0 || net.recovery_pending() > 0 {
        let now = net.now();
        while next < pending.len() && pending[next].cycle <= now {
            let inj = pending[next];
            net.enqueue(inj.src, inj.dst, inj.size, PacketClass::Data, next as u64);
            next += 1;
        }
        net.step();

        if let Some(e) = net.fault_error() {
            return Err(DegradedRunError::Unrecoverable(e));
        }
        let delivered = net.drain_delivered();
        let dropped = net.drain_dropped();
        if !delivered.is_empty() || !dropped.is_empty() {
            last_progress = net.now();
            finished_at = net.now();
        }
        // Recovery activity (acks arriving, copies reinjected) is forward
        // progress even when nothing retired this cycle; so is an empty
        // network waiting out an ack-timeout backoff.
        let recovery = net.recovery_counters();
        if recovery != last_recovery || net.in_flight() == 0 {
            last_progress = net.now();
            last_recovery = recovery;
        }
        for d in &delivered {
            phase.delivered += 1;
            phase.latency_cycles += d.retire.saturating_sub(d.inject);
            latencies.push(d.retire.saturating_sub(d.inject));
        }
        delivered_total += delivered.len() as u64;
        phase.dropped += dropped.len() as u64;
        phase.permanent += dropped.iter().filter(|d| !d.recoverable).count() as u64;
        all_dropped.extend(dropped);

        if net.take_routing_stale() {
            let verified =
                verify_degraded_on(&graph, &cfg_probe, net.dead_links(), net.dead_routers())
                    .map_err(DegradedRunError::Deadlock)?;
            net.install_routing(verified.routing);
            reroutes += 1;
            phase.to_cycle = net.now();
            phases.push(phase);
            phase = PhaseStats {
                from_cycle: net.now(),
                to_cycle: 0,
                delivered: 0,
                dropped: 0,
                permanent: 0,
                latency_cycles: 0,
            };
            last_progress = net.now();
        }

        if net.in_flight() > 0 && net.now().saturating_sub(last_progress) > stall_limit {
            return Err(DegradedRunError::Stalled {
                report: Box::new(net.stall_report()),
                phase: reroutes,
                phase_start: phase.from_cycle,
            });
        }
    }

    phase.to_cycle = net.now();
    phases.push(phase);
    latencies.sort_unstable();
    Ok(DegradedRunReport {
        phases,
        delivered: delivered_total,
        dropped: all_dropped,
        counters: net.fault_counters(),
        recovery: net.recovery_counters(),
        reroutes,
        finished_at,
        latencies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteronoc_noc::config::RouterCfg;
    use heteronoc_noc::fault::{DropReason, FaultKind, HardFault, RetryPolicy};
    use heteronoc_noc::topology::TopologyKind;

    fn mesh8() -> NetworkConfig {
        NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 8,
                height: 8,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        )
    }

    fn all_pairs_burst(n: usize, spacing: Cycle) -> Vec<Injection> {
        let mut inj = Vec::new();
        let mut k = 0u64;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                inj.push(Injection {
                    cycle: k * spacing,
                    src: NodeId(s),
                    dst: NodeId(d),
                    size: Bits(512),
                });
                k += 1;
            }
        }
        inj
    }

    #[test]
    fn healthy_degraded_table_verifies() {
        let cfg = mesh8();
        let v = verify_degraded_routing(&cfg, &[], &[]).unwrap();
        assert!(v.unreachable.is_empty() && v.isolated.is_empty());
        assert!(v.dependencies > 0);
    }

    #[test]
    fn degraded_table_around_dead_router_verifies() {
        let cfg = mesh8();
        let v = verify_degraded_routing(&cfg, &[], &[RouterId(27)]).unwrap();
        assert_eq!(v.isolated, vec![RouterId(27)]);
        assert!(
            v.unreachable.is_empty(),
            "mesh minus one router stays connected"
        );
    }

    #[test]
    fn campaign_survives_mid_run_link_fault() {
        // Kill one physical channel of the 8x8 mesh mid-burst: every packet
        // must still deliver, over a CDG-proven regenerated table, and the
        // report must show both routing phases.
        let g = mesh8().build_graph();
        let l = g
            .links()
            .iter()
            .position(|l| l.src == RouterId(27) && l.dst == RouterId(28))
            .expect("east link 27->28 exists");
        let mut plan = FaultPlan::default();
        plan.hard.push(HardFault {
            cycle: 120,
            kind: FaultKind::Link(heteronoc_noc::types::LinkId(l)),
        });
        let inj = all_pairs_burst(64, 1);
        let total = inj.len() as u64;
        let report = run_with_degradation(mesh8(), plan, &inj, 50_000).unwrap();
        assert_eq!(report.delivered, total, "{:?}", report.counters);
        assert!(report.dropped.is_empty());
        assert_eq!(report.reroutes, 1);
        assert_eq!(report.phases.len(), 2);
        assert!(report.phases[0].delivered > 0, "pre-fault phase delivers");
        assert!(report.phases[1].delivered > 0, "post-fault phase delivers");
        assert_eq!(report.counters.links_dead, 2, "both directions die");
    }

    #[test]
    fn campaign_drops_dead_router_traffic_with_reasons() {
        // Router 36 dies before any wormhole is granted through it: its
        // endpoints' traffic drops with typed reasons, everything else
        // delivers over the regenerated table.
        let mut plan = FaultPlan::default();
        plan.hard.push(HardFault {
            cycle: 0,
            kind: FaultKind::Router(RouterId(36)),
        });
        let inj = all_pairs_burst(64, 1);
        let total = inj.len() as u64;
        let report = run_with_degradation(mesh8(), plan, &inj, 50_000).unwrap();
        assert_eq!(report.reroutes, 1);
        assert!(!report.dropped.is_empty(), "router 36's traffic is lost");
        assert!(report.dropped.iter().all(|d| matches!(
            d.reason,
            DropReason::SourceDead | DropReason::DestinationDead | DropReason::Unreachable
        )));
        assert_eq!(report.delivered + report.dropped.len() as u64, total);
        assert_eq!(report.dropped.len(), 126, "63 sourced + 63 destined at n36");
    }

    #[test]
    fn straddled_router_kill_is_a_typed_error_not_a_hang() {
        // A router that dies with wormholes mid-flight through it black-
        // holes their flits (fail-stop): the sender's bounded retries must
        // surface a typed error — never an endless spin.
        let mut plan = FaultPlan::default();
        plan.hard.push(HardFault {
            cycle: 200,
            kind: FaultKind::Router(RouterId(36)),
        });
        let inj = all_pairs_burst(64, 1);
        let err = run_with_degradation(mesh8(), plan, &inj, 20_000).unwrap_err();
        assert!(
            matches!(
                err,
                DegradedRunError::Unrecoverable(_) | DegradedRunError::Stalled { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn straddled_router_kill_recovers_with_e2e_enabled() {
        // The same mid-flight router kill as above, but with end-to-end
        // recovery: every wedged wormhole is reinjected by its source over
        // the proven degraded table. Delivery must reach 100% of the pairs
        // whose endpoints survive; only node 36's own traffic is lost.
        use heteronoc_noc::fault::RecoveryPolicy;
        let mut plan = FaultPlan::default();
        plan.hard.push(HardFault {
            cycle: 200,
            kind: FaultKind::Router(RouterId(36)),
        });
        plan.recovery = Some(RecoveryPolicy::default());
        let inj = all_pairs_burst(64, 1);
        let total = inj.len() as u64;
        let report = run_with_degradation(mesh8(), plan, &inj, 50_000).unwrap();
        assert_eq!(report.reroutes, 1);
        let permanent = report.permanent_losses();
        assert_eq!(
            report.delivered + permanent,
            total,
            "every packet reaches a final outcome"
        );
        assert!(
            permanent <= 126,
            "at most n36's own traffic may be lost, got {permanent}"
        );
        assert!(
            report
                .dropped
                .iter()
                .filter(|d| !d.recoverable)
                .all(|d| d.packet.src == NodeId(36) || d.packet.dst == NodeId(36)),
            "every permanent loss must name a dead endpoint"
        );
        assert!(
            report.recovery.reinjections > 0,
            "the kill wedged wormholes"
        );
        let expected_ratio = (total - permanent) as f64 / total as f64;
        assert!((report.delivery_ratio() - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn reconfiguration_window_stall_carries_phase_context() {
        // Wedge wormholes in a dead router with a retry budget too large to
        // exhaust and no recovery: the watchdog must fire *inside* the
        // post-kill reconfiguration window and say so.
        let mut plan = FaultPlan {
            retry: RetryPolicy {
                max_attempts: 1_000,
                timeout: 8,
            },
            ..FaultPlan::default()
        };
        plan.hard.push(HardFault {
            cycle: 200,
            kind: FaultKind::Router(RouterId(36)),
        });
        let inj = all_pairs_burst(64, 1);
        let err = run_with_degradation(mesh8(), plan, &inj, 3_000).unwrap_err();
        match &err {
            DegradedRunError::Stalled {
                report,
                phase,
                phase_start,
            } => {
                assert_eq!(*phase, 1, "stall happens after the one reroute");
                assert!(*phase_start >= 200, "phase started at the kill");
                assert!(!report.stuck.is_empty());
                let text = err.to_string();
                assert!(text.contains("phase 1"), "{text}");
            }
            other => panic!("expected a stall with phase context, got {other}"),
        }
    }

    #[test]
    fn campaign_surfaces_retry_exhaustion_as_typed_error() {
        let mut plan = FaultPlan::transient(1.0, 7);
        plan.retry = RetryPolicy {
            max_attempts: 2,
            timeout: 4,
        };
        let inj = all_pairs_burst(8, 3);
        let err = run_with_degradation(mesh8(), plan, &inj, 50_000).unwrap_err();
        assert!(matches!(err, DegradedRunError::Unrecoverable(_)), "{err}");
    }
}
