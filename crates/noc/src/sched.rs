//! Active-set scheduling: the engine's wake-set layer.
//!
//! The HeteroNoC workloads that matter (the paper's §4 load sweeps, the
//! closed-loop CMP runs) operate at low-to-moderate injection rates where
//! most routers hold no flits on most cycles. The [`Scheduler`] keeps the
//! per-cycle hot loop proportional to the *active* part of the network
//! instead of its size: routers report themselves [`Quiescent`] or
//! [`Active`](RouterActivity::Active) through explicit wake notifications,
//! and [`crate::network::Network::step`] only visits the wake set.
//!
//! ## Wake-reason taxonomy
//!
//! A router can only make progress in a cycle if it holds at least one
//! buffered flit, so the wake set is exactly the set of routers with
//! non-zero buffer occupancy. Every occupancy `0 → 1` transition is a wake
//! point, classified by [`WakeReason`]:
//!
//! * [`WakeReason::FlitArrive`] — a flit event (node injection or upstream
//!   link traversal on the fault-free path) delivered into an input VC;
//! * [`WakeReason::LinkArrive`] — a flit accepted by the fault layer's
//!   link-level retransmission machinery;
//! * [`WakeReason::Restore`] — buffered flits reappearing when a checkpoint
//!   is restored (the wake set itself is *derived* state: it is never
//!   serialized, so checkpoints stay byte-identical across engine modes).
//!
//! Events that do **not** wake a router, and why skipping them is sound:
//!
//! * *Credits* arriving at an empty router cannot enable progress — there
//!   is nothing buffered to send — and merely increment a counter that the
//!   router reads the next time it is woken by a flit.
//! * *Round-robin arbiters* at a quiescent router are pure no-ops: with no
//!   requesters, [`crate::router::arbiter::RrArbiter`] neither grants nor
//!   moves its pointer, so skipping the allocation phases leaves every
//!   arbiter byte-identical to the walk-everything engine.
//! * *Source nodes* are walked every cycle in both modes (the driver must
//!   draw one RNG sample per node per cycle anyway to keep the injection
//!   schedule deterministic), so node-side wakes are unnecessary.
//! * *Fault/traffic timers* (retransmission timeouts, hard-fault kills,
//!   end-to-end acks) live in the far-event queue, which is consulted
//!   every cycle whenever a fault layer is attached.
//!
//! Dead (fail-stopped) routers with frozen flits stay in the wake set so
//! the statistics integrals keep accumulating their occupancy, but the
//! allocation phases skip them — exactly as the reference engine does.
//!
//! ## Determinism argument
//!
//! The reference engine ([`EngineMode::PollAll`]) visits routers in
//! ascending index order; event-insertion order into the timing wheel (and
//! the fault layer's RNG draw order) therefore depends on that order. The
//! active list is kept **sorted ascending** before every iteration, so the
//! subsequence of routers actually visited is traversed in the identical
//! order, and every skipped router is provably a no-op. Both engines hence
//! produce byte-identical statistics, traces, checkpoints and state
//! digests — enforced by the golden-fingerprint and scheduler-equivalence
//! suites.
//!
//! [`Quiescent`]: RouterActivity::Quiescent

/// How the engine walks the network each cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// Visit only routers in the wake set, and fast-forward across
    /// globally-quiet gaps (the default).
    #[default]
    ActiveSet,
    /// Reference mode: poll every router, port and VC every cycle, with no
    /// quiet-gap fast-forwarding. Byte-identical to [`EngineMode::ActiveSet`]
    /// (proven by the equivalence suites) and the baseline the active-set
    /// speedup is measured against.
    PollAll,
}

/// Why a router entered the wake set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeReason {
    /// A flit event was delivered into one of the router's input VCs.
    FlitArrive,
    /// The fault layer's link machinery accepted a flit into an input VC.
    LinkArrive,
    /// A checkpoint restore rebuilt the wake set from buffer occupancy.
    Restore,
}

impl WakeReason {
    fn index(self) -> usize {
        match self {
            WakeReason::FlitArrive => 0,
            WakeReason::LinkArrive => 1,
            WakeReason::Restore => 2,
        }
    }
}

/// A router's self-reported activity state for the coming cycle.
///
/// This is what replaces being polled: the engine derives it from buffer
/// occupancy at the end of each cycle and parks [`Quiescent`] routers out
/// of the hot loop until a [`WakeReason`] fires.
///
/// [`Quiescent`]: RouterActivity::Quiescent
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterActivity {
    /// No buffered flits: the router cannot make progress and is skipped.
    Quiescent,
    /// At least one buffered flit: the router is in the wake set.
    Active,
}

/// Wake-set size histogram buckets: `0, 1, 2–3, 4–7, 16–31, …, ≥64`
/// (log₂-spaced).
pub const WAKE_BUCKETS: usize = 8;

fn bucket(n: usize) -> usize {
    ((usize::BITS - n.leading_zeros()) as usize).min(WAKE_BUCKETS - 1)
}

/// Lower bound of histogram bucket `i` (for display).
pub(crate) fn bucket_lo(i: usize) -> usize {
    if i == 0 {
        0
    } else {
        1 << (i - 1)
    }
}

/// Scheduler statistics: how much work the active-set engine actually did
/// versus what a walk-everything engine would have done.
///
/// Returned by [`crate::network::Network::sched_report`] and embedded in
/// [`crate::profile::ProfileReport::sched`]; `heteronoc run --profile`
/// renders it. All counters are observability-only — they are not part of
/// the simulation state, never serialized, and never hashed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedReport {
    /// Total cycles the engine advanced (full + idle + jumped).
    pub cycles: u64,
    /// Cycles that ran the full event/allocation pipeline.
    pub full_cycles: u64,
    /// Globally-quiet cycles advanced one at a time via the idle fast path
    /// (event wheel empty, wake set empty, all sources idle).
    pub idle_cycles: u64,
    /// Cycles skipped in bulk quiet-gap jumps (injection provably off).
    pub jumped_cycles: u64,
    /// Routers visited by the allocation phases.
    pub router_visits: u64,
    /// Router visits avoided relative to polling every router every cycle.
    pub router_visits_skipped: u64,
    /// Wakes per [`WakeReason`] (flit arrival, link arrival, restore).
    pub wakes: [u64; 3],
    /// Histogram of wake-set size per cycle, log₂-spaced buckets
    /// (`0, 1, 2–3, 4–7, …, ≥64`). Idle and jumped cycles count in
    /// bucket 0.
    pub wake_hist: [u64; WAKE_BUCKETS],
}

impl SchedReport {
    /// Cycles that skipped the full pipeline (idle + jumped): the
    /// "skipped-cycle count" of the profile output.
    pub fn cycles_skipped(&self) -> u64 {
        self.idle_cycles + self.jumped_cycles
    }

    /// Mean wake-set size over full cycles.
    pub fn mean_wake_set(&self) -> f64 {
        if self.full_cycles == 0 {
            0.0
        } else {
            self.router_visits as f64 / self.full_cycles as f64
        }
    }

    /// Merges another report into this one (for summing across runs).
    pub fn merge(&mut self, other: &SchedReport) {
        self.cycles += other.cycles;
        self.full_cycles += other.full_cycles;
        self.idle_cycles += other.idle_cycles;
        self.jumped_cycles += other.jumped_cycles;
        self.router_visits += other.router_visits;
        self.router_visits_skipped += other.router_visits_skipped;
        for (a, b) in self.wakes.iter_mut().zip(&other.wakes) {
            *a += b;
        }
        for (a, b) in self.wake_hist.iter_mut().zip(&other.wake_hist) {
            *a += b;
        }
    }
}

impl std::fmt::Display for SchedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.cycles.max(1);
        writeln!(
            f,
            "  scheduler: {} cycles ({} full, {} idle, {} jumped — {:.1}% skipped)",
            self.cycles,
            self.full_cycles,
            self.idle_cycles,
            self.jumped_cycles,
            100.0 * self.cycles_skipped() as f64 / total as f64
        )?;
        let polled = self.router_visits + self.router_visits_skipped;
        writeln!(
            f,
            "  router visits: {} of {} polled-equivalent ({:.1}% skipped), mean wake-set {:.2}",
            self.router_visits,
            polled,
            100.0 * self.router_visits_skipped as f64 / polled.max(1) as f64,
            self.mean_wake_set()
        )?;
        write!(f, "  wake-set size histogram:")?;
        for (i, &count) in self.wake_hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = bucket_lo(i);
            if i + 1 < WAKE_BUCKETS {
                let hi = bucket_lo(i + 1).saturating_sub(1);
                if lo == hi {
                    write!(f, " {lo}:{count}")?;
                } else {
                    write!(f, " {lo}-{hi}:{count}")?;
                }
            } else {
                write!(f, " {lo}+:{count}")?;
            }
        }
        Ok(())
    }
}

/// The active-set scheduler: wake-set membership plus the engine-mode
/// switch and its observability counters.
///
/// Owned by [`crate::network::Network`]; the wake set is *derived* state
/// (reconstructible from buffer occupancy), so it is rebuilt on checkpoint
/// restore rather than serialized.
#[derive(Debug)]
pub(crate) struct Scheduler {
    mode: EngineMode,
    /// Per-router wake-set membership.
    members: Vec<bool>,
    /// The wake set as router indices; sorted ascending before iteration
    /// so visit order matches the reference engine's.
    active: Vec<usize>,
    sorted: bool,
    stats: SchedReport,
}

impl Scheduler {
    pub(crate) fn new(num_routers: usize) -> Self {
        Self {
            mode: EngineMode::default(),
            members: vec![false; num_routers],
            active: Vec::new(),
            sorted: true,
            stats: SchedReport::default(),
        }
    }

    pub(crate) fn mode(&self) -> EngineMode {
        self.mode
    }

    pub(crate) fn set_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
    }

    /// A router's self-reported state.
    pub(crate) fn activity(&self, r: usize) -> RouterActivity {
        if self.members[r] {
            RouterActivity::Active
        } else {
            RouterActivity::Quiescent
        }
    }

    /// Adds router `r` to the wake set (idempotent).
    #[inline]
    pub(crate) fn wake(&mut self, r: usize, reason: WakeReason) {
        if !self.members[r] {
            self.members[r] = true;
            self.active.push(r);
            self.sorted = false;
            self.stats.wakes[reason.index()] += 1;
        }
    }

    /// Takes the wake set for this cycle's allocation phases, sorted
    /// ascending. Hand it back via [`Scheduler::end_cycle`].
    pub(crate) fn begin_cycle(&mut self) -> Vec<usize> {
        if !self.sorted {
            self.active.sort_unstable();
            self.sorted = true;
        }
        std::mem::take(&mut self.active)
    }

    /// Removes router `r` from the wake set (its occupancy reached zero).
    #[inline]
    pub(crate) fn sleep(&mut self, r: usize) {
        self.members[r] = false;
    }

    /// Returns the (retention-filtered) wake set after a cycle. New wakes
    /// that raced in during the cycle are appended behind it.
    pub(crate) fn end_cycle(&mut self, mut list: Vec<usize>) {
        if !self.active.is_empty() {
            list.append(&mut self.active);
            self.sorted = false;
        }
        self.active = list;
    }

    /// True when the wake set is empty (no router holds a buffered flit).
    pub(crate) fn wake_set_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Rebuilds the wake set from scratch (checkpoint restore).
    pub(crate) fn rebuild<F: Fn(usize) -> bool>(&mut self, occupied: F) {
        self.active.clear();
        for r in 0..self.members.len() {
            self.members[r] = occupied(r);
            if self.members[r] {
                self.active.push(r);
                self.stats.wakes[WakeReason::Restore.index()] += 1;
            }
        }
        self.sorted = true;
    }

    /// Accounts one cycle that ran the full pipeline and visited `visits`
    /// of `total` routers.
    #[inline]
    pub(crate) fn note_full_cycle(&mut self, visits: usize, total: usize) {
        self.stats.cycles += 1;
        self.stats.full_cycles += 1;
        self.stats.router_visits += visits as u64;
        self.stats.router_visits_skipped += (total - visits) as u64;
        self.stats.wake_hist[bucket(visits)] += 1;
    }

    /// Accounts one globally-quiet cycle advanced via the idle fast path.
    #[inline]
    pub(crate) fn note_idle_cycle(&mut self, total: usize) {
        self.stats.cycles += 1;
        self.stats.idle_cycles += 1;
        self.stats.router_visits_skipped += total as u64;
        self.stats.wake_hist[0] += 1;
    }

    /// Accounts `delta` cycles skipped in one bulk quiet-gap jump.
    #[inline]
    pub(crate) fn note_jump(&mut self, delta: u64, total: usize) {
        self.stats.cycles += delta;
        self.stats.jumped_cycles += delta;
        self.stats.router_visits_skipped += delta * total as u64;
        self.stats.wake_hist[0] += delta;
    }

    pub(crate) fn report(&self) -> SchedReport {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_is_idempotent_and_sorted() {
        let mut s = Scheduler::new(8);
        s.wake(5, WakeReason::FlitArrive);
        s.wake(2, WakeReason::FlitArrive);
        s.wake(5, WakeReason::FlitArrive);
        s.wake(7, WakeReason::LinkArrive);
        assert_eq!(s.activity(5), RouterActivity::Active);
        assert_eq!(s.activity(0), RouterActivity::Quiescent);
        let list = s.begin_cycle();
        assert_eq!(list, vec![2, 5, 7]);
        s.end_cycle(list);
        assert_eq!(s.report().wakes, [2, 1, 0]);
    }

    #[test]
    fn sleep_and_retention_shrink_the_set() {
        let mut s = Scheduler::new(4);
        s.wake(1, WakeReason::FlitArrive);
        s.wake(3, WakeReason::FlitArrive);
        let mut list = s.begin_cycle();
        list.retain(|&r| {
            if r == 1 {
                s.sleep(r);
                false
            } else {
                true
            }
        });
        s.end_cycle(list);
        assert_eq!(s.activity(1), RouterActivity::Quiescent);
        assert_eq!(s.begin_cycle(), vec![3]);
    }

    #[test]
    fn wakes_during_cycle_are_kept() {
        let mut s = Scheduler::new(4);
        s.wake(2, WakeReason::FlitArrive);
        let list = s.begin_cycle();
        s.wake(0, WakeReason::FlitArrive); // races in mid-cycle
        s.end_cycle(list);
        assert_eq!(s.begin_cycle(), vec![0, 2]);
    }

    #[test]
    fn rebuild_reflects_occupancy() {
        let mut s = Scheduler::new(4);
        s.wake(0, WakeReason::FlitArrive);
        s.rebuild(|r| r == 1 || r == 3);
        assert_eq!(s.activity(0), RouterActivity::Quiescent);
        assert_eq!(s.begin_cycle(), vec![1, 3]);
        assert_eq!(s.report().wakes[WakeReason::Restore.index()], 2);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(63), 6);
        assert_eq!(bucket(64), 7);
        assert_eq!(bucket(10_000), 7);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(7), 64);
    }

    #[test]
    fn report_accounts_cycles_and_skips() {
        let mut s = Scheduler::new(64);
        s.note_full_cycle(10, 64);
        s.note_idle_cycle(64);
        s.note_jump(100, 64);
        let r = s.report();
        assert_eq!(r.cycles, 102);
        assert_eq!(r.cycles_skipped(), 101);
        assert_eq!(r.router_visits, 10);
        assert_eq!(r.router_visits_skipped, 54 + 64 + 100 * 64);
        let text = r.to_string();
        assert!(text.contains("scheduler"), "{text}");
        assert!(text.contains("wake-set size histogram"), "{text}");
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut s = Scheduler::new(8);
        s.note_full_cycle(3, 8);
        let mut a = s.report();
        a.merge(&s.report());
        assert_eq!(a.cycles, 2);
        assert_eq!(a.router_visits, 6);
        assert!((a.mean_wake_set() - 3.0).abs() < 1e-12);
    }
}
