//! Offline stand-in for `criterion`.
//!
//! Implements the group/bench API subset the HeteroNoC benches use, backed by
//! a plain wall-clock measurement loop: each benchmark runs `sample_size`
//! timed samples (after one warm-up run) and reports min/mean/max per
//! iteration. No statistical analysis, HTML reports, or CLI filtering —
//! enough to keep `cargo bench` informative while the real dependency is
//! unavailable offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 100,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 100, f);
    }
}

/// A named set of benchmarks sharing settings such as `sample_size`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, e.g. `1k_cycles_ur/Row25BL`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample (plus one untimed warm-up call).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples (b.iter was never called)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "  {label}: [{} {} {}] over {} samples",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        bencher.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into a runner invoked by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main()` running the given `criterion_group!` bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches_and_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_with_input(BenchmarkId::new("add", 7), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x + 1
            })
        });
        g.bench_function("plain", |b| b.iter(|| 2 + 2));
        g.finish();
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", "Row25BL").label, "f/Row25BL");
        assert_eq!(BenchmarkId::from_parameter(6).label, "6");
    }
}
