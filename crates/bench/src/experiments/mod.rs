//! Every paper experiment as an in-process function.
//!
//! Each table/figure keeps a thin binary wrapper in `src/bin/`, but the
//! body lives here so `run_all` can execute the whole suite inside one
//! process, sharded across the sweep executor's worker pool
//! ([`crate::sweep::parallel_map`]) — a panic in one experiment is caught
//! and reported instead of only surfacing through a child's stderr.
//!
//! `fig07_ur_traffic`, `fig10_torus`, `dse_4x4` and `fault_degradation`
//! run on the sweep-orchestration engine ([`crate::sweep`]) and therefore
//! parallelize internally and memoize their points in `results/cache/`.

pub mod ablation_conditions;
pub mod dse_4x4;
pub mod dse_8x8_heuristic;
pub mod extra_patterns;
pub mod fault_degradation;
pub mod fig01_mesh_utilization;
pub mod fig02_other_topologies;
pub mod fig07_ur_traffic;
pub mod fig08_breakdowns;
pub mod fig09_nn_traffic;
pub mod fig10_torus;
pub mod fig11_applications;
pub mod fig13_memctrl;
pub mod fig14_asymmetric;
pub mod stat_combining;
pub mod table1_router_costs;

/// Registry of every experiment, in the canonical run order (cheap static
/// accounting first, the long closed-loop runs last).
pub const ALL: &[(&str, fn())] = &[
    ("table1_router_costs", table1_router_costs::run),
    ("fig01_mesh_utilization", fig01_mesh_utilization::run),
    ("fig02_other_topologies", fig02_other_topologies::run),
    ("fig07_ur_traffic", fig07_ur_traffic::run),
    ("fig08_breakdowns", fig08_breakdowns::run),
    ("fig09_nn_traffic", fig09_nn_traffic::run),
    ("extra_patterns", extra_patterns::run),
    ("stat_combining", stat_combining::run),
    ("dse_4x4", dse_4x4::run),
    ("dse_8x8_heuristic", dse_8x8_heuristic::run),
    ("fig11_applications", fig11_applications::run),
    ("fig10_torus", fig10_torus::run),
    ("fig13_memctrl", fig13_memctrl::run),
    ("fig14_asymmetric", fig14_asymmetric::run),
    ("ablation_conditions", ablation_conditions::run),
    ("fault_degradation", fault_degradation::run),
];
