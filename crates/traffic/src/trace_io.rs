//! Plain-text trace serialization, so users can replay *real* memory traces
//! (e.g. converted Simics/Pin output) instead of the synthetic workloads.
//!
//! Format: one record per line, `<gap> <L|S> <hex-address>`; blank lines and
//! `#` comments are ignored.
//!
//! ```text
//! # thread 0 of canneal
//! 12 L 0x1000a0c0
//! 0  S 0x1000a100
//! ```

use std::io::{BufRead, BufReader, Read, Write};

use crate::trace::{MemOp, TraceRecord, VecTrace};

/// Error from parsing a trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses one record line (without comment/blank handling).
fn parse_line(line: &str, lineno: usize) -> Result<TraceRecord, ParseTraceError> {
    let err = |reason: String| ParseTraceError {
        line: lineno,
        reason,
    };
    let mut it = line.split_whitespace();
    let gap_str = it.next().ok_or_else(|| err("missing gap field".into()))?;
    let gap: u32 = gap_str.parse().map_err(|e: std::num::ParseIntError| {
        if *e.kind() == std::num::IntErrorKind::PosOverflow {
            err(format!("gap '{gap_str}' overflows u32 (max {})", u32::MAX))
        } else {
            err(format!("gap '{gap_str}' is not an unsigned integer"))
        }
    })?;
    let op = match it.next() {
        Some("L") | Some("l") => MemOp::Load,
        Some("S") | Some("s") => MemOp::Store,
        Some(other) => return Err(err(format!("op must be L or S, got '{other}'"))),
        None => return Err(err("missing op field".into())),
    };
    let raw_addr = it
        .next()
        .ok_or_else(|| err("missing address field".into()))?;
    let addr_str = raw_addr.strip_prefix("0x").unwrap_or(raw_addr);
    let addr =
        u64::from_str_radix(addr_str, 16).map_err(|e: std::num::ParseIntError| match e.kind() {
            std::num::IntErrorKind::PosOverflow => {
                err(format!("address '{raw_addr}' overflows 64 bits"))
            }
            std::num::IntErrorKind::Empty => err("address is empty".into()),
            _ => err(format!("address '{raw_addr}' is not hex")),
        })?;
    if let Some(extra) = it.next() {
        return Err(err(format!("unexpected trailing field '{extra}'")));
    }
    Ok(TraceRecord { gap, op, addr })
}

/// Reads a trace from `reader`.
///
/// # Errors
/// Returns the first malformed line with its line number, or the underlying
/// I/O error message.
pub fn read_trace<R: Read>(reader: R) -> Result<VecTrace, ParseTraceError> {
    let mut records = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| ParseTraceError {
            line: i + 1,
            reason: format!("io error: {e}"),
        })?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        records.push(parse_line(t, i + 1)?);
    }
    Ok(VecTrace::new(records))
}

/// Writes `records` to `writer` in the text format. A mutable reference to
/// any `Write` works as the writer.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_trace<W: Write>(
    mut writer: W,
    records: impl IntoIterator<Item = TraceRecord>,
) -> std::io::Result<()> {
    for r in records {
        let op = match r.op {
            MemOp::Load => 'L',
            MemOp::Store => 'S',
        };
        writeln!(writer, "{} {} {:#x}", r.gap, op, r.addr)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSource;

    #[test]
    fn round_trip() {
        let records = vec![
            TraceRecord {
                gap: 12,
                op: MemOp::Load,
                addr: 0x1000_a0c0,
            },
            TraceRecord {
                gap: 0,
                op: MemOp::Store,
                addr: 0x1000_a100,
            },
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, records.clone()).expect("write");
        let mut back = read_trace(&buf[..]).expect("read");
        let got: Vec<TraceRecord> = std::iter::from_fn(|| back.next_record()).collect();
        assert_eq!(got, records);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n3 L 0x80\n  \n# tail\n0 S 100\n";
        let mut t = read_trace(text.as_bytes()).expect("read");
        assert_eq!(
            t.next_record(),
            Some(TraceRecord {
                gap: 3,
                op: MemOp::Load,
                addr: 0x80
            })
        );
        assert_eq!(
            t.next_record(),
            Some(TraceRecord {
                gap: 0,
                op: MemOp::Store,
                addr: 0x100
            })
        );
        assert_eq!(t.next_record(), None);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = read_trace("1 L 0x10\nbogus\n".as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        let e = read_trace("1 X 0x10\n".as_bytes()).unwrap_err();
        assert!(e.reason.contains("op must be L or S"));
        let e = read_trace("1 L zz\n".as_bytes()).unwrap_err();
        assert!(e.reason.contains("not hex"));
        let e = read_trace("1 L 0x10 extra\n".as_bytes()).unwrap_err();
        assert!(e.reason.contains("trailing"));
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn overflowing_fields_are_named_precisely() {
        // Gap beyond u32: an overflow, not a syntax complaint.
        let e = read_trace("4294967296 L 0x10\n".as_bytes()).unwrap_err();
        assert!(e.reason.contains("overflows u32"), "{e}");
        // Gap that is merely malformed keeps the syntax message.
        let e = read_trace("-3 L 0x10\n".as_bytes()).unwrap_err();
        assert!(e.reason.contains("not an unsigned integer"), "{e}");
        // Address beyond 64 bits: an overflow, with the original token.
        let e = read_trace("1 L 0x10000000000000000\n".as_bytes()).unwrap_err();
        assert!(e.reason.contains("overflows 64 bits"), "{e}");
        assert!(e.reason.contains("0x10000000000000000"), "{e}");
        // Bare "0x" is an empty address, not hex garbage.
        let e = read_trace("1 L 0x\n".as_bytes()).unwrap_err();
        assert!(e.reason.contains("empty"), "{e}");
    }
}
