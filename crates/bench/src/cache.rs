//! Content-addressed result cache for sweep points.
//!
//! Every sweep point is keyed by a 128-bit FNV-1a hash of its *canonical
//! description* — the `Debug` rendering of the full network configuration
//! and the point kind (layout, `SimParams`, traffic pattern, fault plan,
//! seeds — everything that determines the simulation's output, and nothing
//! that doesn't, such as display labels or worker count). Rust's `Debug`
//! for `f64` uses shortest round-trip formatting, so the canonical string
//! is stable across runs and platforms.
//!
//! Completed points are persisted as JSON-lines (one
//! `{"key":…,"metrics":…}` object per line) in `results/cache/points.jsonl`.
//! Corrupt or truncated lines are skipped on load — the cache is a pure
//! accelerator, never a source of truth — and re-running the point simply
//! rewrites its entry.
//!
//! All cache I/O happens on the sweep coordinator thread (lookups before
//! points are scheduled, inserts as results arrive), so the file needs no
//! locking beyond append-only writes.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::json::{self, Json};

/// Bump when the metrics schema or canonical-description format changes;
/// old cache entries then miss instead of deserializing garbage.
pub const SCHEMA_VERSION: u32 = 2;

/// 64-bit FNV-1a over `bytes`, from `offset` (lets us derive two
/// independent 64-bit streams for a 128-bit key).
fn fnv1a64(bytes: &[u8], offset: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Content-address for a canonical point description: 32 hex chars
/// (two independent FNV-1a-64 passes), prefixed with the schema version.
pub fn content_key(canonical: &str) -> String {
    const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325; // standard FNV offset basis
    const OFFSET_B: u64 = 0x6c62_272e_07bb_0142; // high half of the 128-bit basis
    let bytes = canonical.as_bytes();
    format!(
        "v{SCHEMA_VERSION}-{:016x}{:016x}",
        fnv1a64(bytes, OFFSET_A),
        fnv1a64(bytes, OFFSET_B)
    )
}

/// The on-disk result cache: an in-memory map backed by an append-only
/// JSON-lines file.
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    map: HashMap<String, Json>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache under `dir`; loads every intact
    /// entry from `points.jsonl`.
    pub fn open(dir: &Path) -> std::io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        let path = dir.join("points.jsonl");
        let mut map = HashMap::new();
        if let Ok(text) = fs::read_to_string(&path) {
            for line in text.lines() {
                let Ok(entry) = json::parse(line) else {
                    continue; // torn write or hand edit: treat as a miss
                };
                let (Some(key), Some(metrics)) = (
                    entry.get("key").and_then(Json::as_str),
                    entry.get("metrics"),
                ) else {
                    continue;
                };
                map.insert(key.to_owned(), metrics.clone());
            }
        }
        Ok(ResultCache { path, map })
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no points.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a point by content key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.map.get(key)
    }

    /// Inserts a completed point and appends it to the backing file.
    pub fn insert(&mut self, key: String, metrics: Json) -> std::io::Result<()> {
        let line = Json::obj(vec![
            ("key", Json::Str(key.clone())),
            ("metrics", metrics.clone()),
        ]);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(f, "{line}")?;
        self.map.insert(key, metrics);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_stable_and_sensitive() {
        let a = content_key("cfg=A|rate=0.01|seed=7");
        let b = content_key("cfg=A|rate=0.01|seed=7");
        assert_eq!(a, b, "same canonical description hashes identically");
        // Any single-field change produces a different key.
        for variant in [
            "cfg=B|rate=0.01|seed=7",
            "cfg=A|rate=0.02|seed=7",
            "cfg=A|rate=0.01|seed=8",
            "cfg=A|rate=0.01|seed=7 ",
        ] {
            assert_ne!(a, content_key(variant), "{variant}");
        }
        assert!(a.starts_with(&format!("v{SCHEMA_VERSION}-")));
        assert_eq!(a.len(), format!("v{SCHEMA_VERSION}-").len() + 32);
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("heteronoc-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let metrics = Json::obj(vec![
            ("latency_ns", Json::Num(23.75)),
            ("delivered", Json::Int(15000)),
        ]);
        {
            let mut c = ResultCache::open(&dir).unwrap();
            assert!(c.is_empty());
            c.insert(content_key("p1"), metrics.clone()).unwrap();
            c.insert(content_key("p2"), Json::Null).unwrap();
            assert_eq!(c.len(), 2);
        }
        {
            let c = ResultCache::open(&dir).unwrap();
            assert_eq!(c.len(), 2);
            assert_eq!(c.get(&content_key("p1")), Some(&metrics));
            assert_eq!(c.get(&content_key("p3")), None);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_skips_corrupt_lines() {
        let dir = std::env::temp_dir().join(format!("heteronoc-cache-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("points.jsonl"),
            "{\"key\":\"k1\",\"metrics\":{\"a\":1}}\nnot json at all\n{\"metrics\":{}}\n{\"key\":\"k2\",\"metrics\":2}\n",
        )
        .unwrap();
        let c = ResultCache::open(&dir).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.get("k1").is_some());
        assert_eq!(c.get("k2"), Some(&Json::Int(2)));
        let _ = fs::remove_dir_all(&dir);
    }
}
