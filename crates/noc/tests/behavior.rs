//! Behavioural tests of the router microarchitecture: virtual channels,
//! bandwidth limits, escape-VC diversion and flow-control invariants.

use heteronoc_noc::config::{NetworkConfig, RouterCfg};
use heteronoc_noc::network::Network;
use heteronoc_noc::packet::PacketClass;
use heteronoc_noc::routing::{RouteTable, RoutingKind};
use heteronoc_noc::topology::TopologyKind;
use heteronoc_noc::types::{Bits, NodeId, RouterId};

fn line4() -> NetworkConfig {
    NetworkConfig::homogeneous(
        TopologyKind::Mesh {
            width: 4,
            height: 1,
        },
        RouterCfg {
            vcs_per_port: 2,
            buffer_depth: 5,
        },
        Bits(128),
        1.0,
    )
}

fn drain(net: &mut Network, max: u64) -> u64 {
    let mut steps = 0;
    while net.in_flight() > 0 {
        net.step();
        steps += 1;
        assert!(steps < max, "drain exceeded {max} cycles");
    }
    steps
}

#[test]
fn virtual_channels_allow_packet_interleaving() {
    // Two long packets share the single path 0 -> 3; with 2 VCs both make
    // progress (total time < strictly serial transmission).
    let mut net = Network::new(line4()).expect("valid");
    net.set_measuring(true);
    net.set_record_packets(true);
    net.enqueue(NodeId(0), NodeId(3), Bits(1024), PacketClass::Data, 1);
    net.enqueue(NodeId(0), NodeId(3), Bits(1024), PacketClass::Data, 2);
    drain(&mut net, 10_000);
    let recs = &net.stats().records;
    assert_eq!(recs.len(), 2);
    // Ideal single packet: 3*3 + 4 + 7 = 20 cycles. Two packets over one
    // injection port serialize at the source (one VC each, 1 flit/cycle
    // shared port): the second must finish well before 2x a strictly
    // sequential schedule (20 + 20 + queue).
    let last_retire = recs.iter().map(|r| r.retire).max().unwrap();
    assert!(
        last_retire < 45,
        "VC interleaving should overlap transfers (finished at {last_retire})"
    );
}

#[test]
fn ejection_bandwidth_is_one_flit_per_cycle_per_lane() {
    // 8 single-flit packets from different sources to one destination:
    // the sink port (1 lane at 128b flits) retires at most 1 flit/cycle.
    let cfg = NetworkConfig::homogeneous(
        TopologyKind::Mesh {
            width: 4,
            height: 4,
        },
        RouterCfg::BASELINE,
        Bits(192),
        2.2,
    );
    let mut net = Network::new(cfg).expect("valid");
    net.set_measuring(true);
    net.set_record_packets(true);
    for s in 1..9 {
        net.enqueue(
            NodeId(s),
            NodeId(0),
            Bits(64),
            PacketClass::Control,
            s as u64,
        );
    }
    drain(&mut net, 10_000);
    let mut retires: Vec<u64> = net.stats().records.iter().map(|r| r.retire).collect();
    retires.sort_unstable();
    for w in retires.windows(2) {
        assert!(w[1] > w[0], "two flits may not eject in the same cycle");
    }
}

#[test]
fn credit_backpressure_bounds_in_network_flits() {
    // Stop stepping the destination side by flooding a single path and
    // checking buffers never exceed depth (the debug_assert in the engine
    // enforces per-VC depth; here we check global occupancy stays finite
    // and bounded by total capacity).
    let mut net = Network::new(line4()).expect("valid");
    for _ in 0..50 {
        net.enqueue(NodeId(0), NodeId(3), Bits(1024), PacketClass::Data, 0);
    }
    // Step partially: in-flight flits (not counting source queues) can
    // never exceed the 3 routers' input capacity on the path.
    for _ in 0..200 {
        net.step();
    }
    drain(&mut net, 100_000);
}

#[test]
fn expedited_traffic_uses_table_path_and_drains_under_congestion() {
    // 8x8 mesh, table routing between corners; flood the network with
    // background data while expedited packets cross diagonally.
    let side = 8;
    let mut cfg = NetworkConfig::homogeneous(
        TopologyKind::Mesh {
            width: side,
            height: side,
        },
        RouterCfg::BASELINE,
        Bits(192),
        2.2,
    );
    let graph = cfg.build_graph();
    cfg.routing = RoutingKind::TableXy(RouteTable::for_hubs(
        &graph,
        &[RouterId(0), RouterId(side * side - 1)],
    ));
    cfg.escape_timeout = 8;
    let mut net = Network::new(cfg).expect("valid");
    net.set_measuring(true);
    for wave in 0..5u64 {
        net.enqueue(
            NodeId(0),
            NodeId(side * side - 1),
            Bits(1024),
            PacketClass::Expedited,
            wave,
        );
        net.enqueue(
            NodeId(side * side - 1),
            NodeId(0),
            Bits(1024),
            PacketClass::Expedited,
            wave + 100,
        );
        for s in 0..side * side {
            if s % 3 == 0 {
                net.enqueue(
                    NodeId(s),
                    NodeId((s * 29 + 11) % (side * side)),
                    Bits(1024),
                    PacketClass::Data,
                    999,
                );
            }
        }
    }
    drain(&mut net, 200_000);
    assert_eq!(net.stats().latency_by_class[2].count, 10);
}

#[test]
fn zero_load_latency_scales_linearly_with_hops() {
    let cfg = NetworkConfig::homogeneous(
        TopologyKind::Mesh {
            width: 8,
            height: 1,
        },
        RouterCfg::BASELINE,
        Bits(192),
        2.2,
    );
    let mut prev = 0;
    for d in 1..8usize {
        let mut net = Network::new(cfg.clone()).expect("valid");
        net.enqueue(NodeId(0), NodeId(d), Bits(192), PacketClass::Data, 0);
        drain(&mut net, 1_000);
        let del = net.drain_delivered();
        let lat = del[0].retire - del[0].inject;
        assert_eq!(lat, 3 * d as u64 + 4, "hops={d}");
        assert!(lat > prev);
        prev = lat;
    }
}

#[test]
fn hol_blocking_is_relieved_by_more_vcs() {
    // A congested column: many flows cross the same channel. More VCs at
    // equal buffering must not be slower.
    let run = |vcs: usize, depth: usize| {
        let cfg = NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 8,
                height: 8,
            },
            RouterCfg {
                vcs_per_port: vcs,
                buffer_depth: depth,
            },
            Bits(192),
            2.2,
        );
        let mut net = Network::new(cfg).expect("valid");
        net.set_measuring(true);
        for s in 0..32usize {
            for k in 0..3usize {
                net.enqueue(
                    NodeId(s),
                    NodeId(63 - ((s + k * 7) % 32)),
                    Bits(1024),
                    PacketClass::Data,
                    0,
                );
            }
        }
        drain(&mut net, 100_000)
    };
    let few = run(1, 15);
    let many = run(5, 3);
    assert!(
        many <= few,
        "5 VCs ({many} cycles) must not be slower than 1 VC ({few} cycles) at equal buffering"
    );
}

#[test]
fn wide_local_ports_double_injection_bandwidth() {
    use heteronoc_noc::config::LinkWidths;
    // All-wide network (2 lanes everywhere incl. PE ports) vs narrow.
    let mk = |wide: bool| {
        let mut cfg = NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 4,
                height: 1,
            },
            RouterCfg::BIG,
            Bits(128),
            2.07,
        );
        cfg.flit_width = Bits(128);
        cfg.link_widths = LinkWidths::Uniform(Bits(if wide { 256 } else { 128 }));
        let mut net = Network::new(cfg).expect("valid");
        net.set_measuring(true);
        for _ in 0..8 {
            net.enqueue(NodeId(0), NodeId(3), Bits(1024), PacketClass::Data, 0);
        }
        drain(&mut net, 10_000)
    };
    let narrow = mk(false);
    let wide = mk(true);
    assert!(
        wide < narrow,
        "dual-lane links ({wide} cycles) must beat single-lane ({narrow} cycles) on a bulk transfer"
    );
}
