//! # heteronoc-power — router power, area and frequency models
//!
//! An Orion-style analytical power/area/frequency model for on-chip routers,
//! calibrated to the synthesized design points of the HeteroNoC paper's
//! Table 1 (65 nm):
//!
//! | router   | organization        | power  | area      | frequency |
//! |----------|---------------------|--------|-----------|-----------|
//! | baseline | 3 VCs / 5 / 192b    | 0.67 W | 0.290 mm² | 2.20 GHz  |
//! | small    | 2 VCs / 5 / 128b    | 0.30 W | 0.235 mm² | 2.25 GHz  |
//! | big      | 6 VCs / 5 / 256b    | 1.19 W | 0.425 mm² | 2.07 GHz  |
//!
//! The model reproduces these anchors (power within 2%, area exactly,
//! frequency within 0.25%) and interpolates arbitrary organizations for the
//! design-space exploration. During simulation, per-router power follows the
//! *measured* activity (paper footnote 3) with a 20% leakage floor.
//!
//! ```
//! use heteronoc_power::NetworkPower;
//! use heteronoc_noc::config::NetworkConfig;
//!
//! let np = NetworkPower::paper_calibrated();
//! let cfg = NetworkConfig::paper_baseline();
//! let graph = cfg.build_graph();
//! let report = np.evaluate_at_activity(&cfg, &graph, 0.5);
//! // 64 five-port routers at ~0.67 W, minus depopulated edge ports.
//! assert!(report.total_w() > 30.0 && report.total_w() < 64.0 * 0.67 * 1.02);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breakdown;
pub mod model;
pub mod netpower;
pub mod table1;

pub use breakdown::PowerBreakdown;
pub use model::AnalyticModel;
pub use netpower::{Activity, NetworkPower, PowerReport};
