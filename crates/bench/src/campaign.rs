//! Resumable Monte Carlo reliability campaigns.
//!
//! A [`CampaignSpec`] describes a grid of *cells* — one per
//! (layout × dead-link count) — and every cell is populated with
//! `plans_per_cell` independently sampled fault plans: `kills` distinct
//! links chosen uniformly at random, each with a uniformly random kill
//! cycle inside the injection window. Each sampled plan becomes one
//! simulation point run through the CDG-verified degradation engine
//! ([`run_with_degradation`]), and the cells aggregate into reliability
//! curves: delivery ratio, p99 latency degradation versus the fault-free
//! baseline, reconfiguration downtime (drain-time inflation) and
//! recovery-traffic overhead, all as functions of the dead-link count.
//!
//! Three layers make a campaign cheap to re-run and safe to kill:
//!
//! * **Seeding discipline** — a point's fault plan is a pure function of
//!   (master seed, layout index, kill count, sample index); scheduling
//!   order never leaks into sampling.
//! * **Content-addressed caching** — every point shares the sweep result
//!   cache ([`crate::cache`]); a re-run resolves completed points from
//!   `results/cache/` without simulating.
//! * **A periodically-written atomic manifest** — after every batch the
//!   full campaign state is written to `results/campaigns/<name>.json`
//!   via a temp-file rename. A killed campaign resumes from the manifest:
//!   points recorded `done` are restored, only the remainder simulates.
//!   The manifest is fingerprinted by the spec's content key, so editing
//!   the spec invalidates stale state instead of silently mixing results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use heteronoc::noc::config::NetworkConfig;
use heteronoc::noc::fault::{FaultKind, FaultPlan, HardFault, RecoveryPolicy};
use heteronoc::noc::types::{Bits, Cycle, LinkId, NodeId};
use heteronoc_obs::{ProgressSink, Registry, Snapshot};
use heteronoc_verify::{run_with_degradation, DegradedRunReport, Injection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::{content_key, ResultCache, SCHEMA_VERSION};
use crate::json::{self, Json};
use crate::sweep::parallel_map_until;

/// Packet payload used by every campaign injection (matches the sweep's
/// degradation points, so results are comparable).
const PACKET_BITS: Bits = Bits(512);

/// A Monte Carlo reliability-campaign description: the full grid of
/// (layout × kill count × sample) points is a pure function of this spec.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign name; the manifest lands at `results/campaigns/<name>.json`.
    pub name: String,
    /// Evaluated layouts as `(display name, configuration)`.
    pub layouts: Vec<(String, NetworkConfig)>,
    /// Dead-link counts per cell (zero entries are ignored — the
    /// fault-free baseline cell is always included per layout).
    pub kills: Vec<usize>,
    /// Sampled fault plans per (layout × kill count) cell.
    pub plans_per_cell: usize,
    /// Master seed; every plan derives its own seed from it.
    pub seed: u64,
    /// All-pairs injection bursts per point.
    pub bursts: u64,
    /// Cycles between consecutive injections.
    pub spacing: Cycle,
    /// Drain watchdog in cycles.
    pub stall_limit: Cycle,
    /// End-to-end delivery guarantees for every sampled plan (`None`
    /// leaves the recovery layer off — losses at a cut go unaccounted).
    pub recovery: Option<RecoveryPolicy>,
}

impl CampaignSpec {
    /// Canonical description of everything that determines the results —
    /// the name is excluded, so renaming a campaign keeps its cache.
    pub fn canonical(&self) -> String {
        format!(
            "campaign-v{SCHEMA_VERSION}|{:?}|{:?}|{}|{}|{}|{}|{}|{:?}",
            self.layouts,
            self.kills,
            self.plans_per_cell,
            self.seed,
            self.bursts,
            self.spacing,
            self.stall_limit,
            self.recovery,
        )
    }

    /// Content-address of the spec; stamped into the manifest so resume
    /// never mixes state from a different campaign definition.
    pub fn fingerprint(&self) -> String {
        content_key(&self.canonical())
    }

    /// Expands the grid into points: per layout, one fault-free baseline
    /// cell (a single sample — it is deterministic) followed by
    /// `plans_per_cell` sampled plans per non-zero kill count.
    pub fn points(&self) -> Result<Vec<CampaignPoint>, String> {
        let mut out = Vec::new();
        for (li, (name, cfg)) in self.layouts.iter().enumerate() {
            let graph = cfg.build_graph();
            let links = graph.num_links();
            let routers = graph.num_routers();
            let nodes = graph.nodes().len();
            let horizon = injection_window(nodes, self.bursts, self.spacing);
            let mut cells: Vec<usize> = vec![0];
            cells.extend(self.kills.iter().copied().filter(|&k| k > 0));
            for k in cells {
                let samples = if k == 0 { 1 } else { self.plans_per_cell };
                for s in 0..samples {
                    let plan = self.sample_plan(li, k, s, links, horizon);
                    plan.validate(links, routers).map_err(|e| {
                        format!("{name} k={k} sample {s}: invalid sampled plan: {e}")
                    })?;
                    out.push(CampaignPoint {
                        layout: name.clone(),
                        kills: k,
                        sample: s,
                        config: cfg.clone(),
                        plan,
                        bursts: self.bursts,
                        spacing: self.spacing,
                        stall_limit: self.stall_limit,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Samples the fault plan for one point: `kills` distinct links, each
    /// dying at a uniformly random cycle inside the injection window. The
    /// RNG is seeded from (master, layout, kills, sample) only.
    fn sample_plan(
        &self,
        layout: usize,
        kills: usize,
        sample: usize,
        links: usize,
        horizon: Cycle,
    ) -> FaultPlan {
        let seed = plan_seed(self.seed, layout, kills, sample);
        let mut plan = FaultPlan {
            seed,
            recovery: self.recovery,
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chosen: Vec<usize> = Vec::with_capacity(kills);
        while chosen.len() < kills.min(links) {
            let l = rng.random_range(0..links);
            if !chosen.contains(&l) {
                chosen.push(l);
            }
        }
        for l in chosen {
            let cycle = rng.random_range(1..horizon.max(2));
            plan.hard.push(HardFault {
                cycle,
                kind: FaultKind::Link(LinkId(l)),
            });
        }
        plan
    }
}

/// Last injection cycle of an all-pairs campaign run, plus one spacing of
/// slack — sampled kill cycles stay inside this window so every fault
/// lands while traffic is still being offered.
fn injection_window(nodes: usize, bursts: u64, spacing: Cycle) -> Cycle {
    let per_burst = (nodes * nodes.saturating_sub(1)) as u64;
    (bursts * per_burst).max(1) * spacing.max(1)
}

/// Derives a point's plan seed from the campaign coordinates (FNV-1a over
/// the coordinate words, offset by the master seed).
fn plan_seed(master: u64, layout: usize, kills: usize, sample: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ master;
    for v in [layout as u64, kills as u64, sample as u64] {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// One simulation point of a campaign: a layout configuration plus its
/// sampled fault plan and run parameters.
#[derive(Clone, Debug)]
pub struct CampaignPoint {
    /// Layout display name.
    pub layout: String,
    /// Dead-link count of the point's cell (0 = fault-free baseline).
    pub kills: usize,
    /// Sample index within the cell.
    pub sample: usize,
    /// The network configuration.
    pub config: NetworkConfig,
    /// The sampled fault plan.
    pub plan: FaultPlan,
    /// All-pairs bursts injected.
    pub bursts: u64,
    /// Cycles between consecutive injections.
    pub spacing: Cycle,
    /// Drain watchdog in cycles.
    pub stall_limit: Cycle,
}

impl CampaignPoint {
    /// Canonical description hashed into the shared result cache.
    pub fn canonical(&self) -> String {
        format!(
            "campaign-v{SCHEMA_VERSION}|{:?}|{:?}|{}|{}|{}",
            self.config, self.plan, self.bursts, self.spacing, self.stall_limit
        )
    }

    /// Content-address of this point for the result cache.
    pub fn content_key(&self) -> String {
        content_key(&self.canonical())
    }
}

/// Runs one campaign point to a metrics object. Typed engine errors and
/// panics both land in the `error` member — a lost point never loses the
/// campaign.
pub fn run_campaign_point(point: &CampaignPoint) -> Json {
    let r = catch_unwind(AssertUnwindSafe(|| execute_point(point)));
    match r {
        Ok(Ok(report)) => point_metrics(&report),
        Ok(Err(e)) => error_metrics(&e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_owned());
            error_metrics(&format!("panicked: {msg}"))
        }
    }
}

fn execute_point(point: &CampaignPoint) -> Result<DegradedRunReport, String> {
    let nodes = point.config.build_graph().nodes().len();
    let mut injections = Vec::new();
    let mut k: Cycle = 0;
    for _ in 0..point.bursts {
        for s in 0..nodes {
            for d in 0..nodes {
                if s == d {
                    continue;
                }
                injections.push(Injection {
                    cycle: k * point.spacing,
                    src: NodeId(s),
                    dst: NodeId(d),
                    size: PACKET_BITS,
                });
                k += 1;
            }
        }
    }
    run_with_degradation(
        point.config.clone(),
        point.plan.clone(),
        &injections,
        point.stall_limit,
    )
    .map_err(|e| e.to_string())
}

fn int(v: u64) -> Json {
    i64::try_from(v).map_or(Json::Num(v as f64), Json::Int)
}

fn point_metrics(r: &DegradedRunReport) -> Json {
    Json::obj(vec![
        ("delivered", int(r.delivered)),
        ("permanent", int(r.permanent_losses())),
        ("delivery_ratio", Json::Num(r.delivery_ratio())),
        ("latency_p50", int(r.latency_percentile(0.50))),
        ("latency_p99", int(r.latency_percentile(0.99))),
        ("finished_at", int(r.finished_at)),
        ("reroutes", int(u64::from(r.reroutes))),
        ("retransmissions", int(r.counters.retransmissions)),
        ("reinjections", int(r.recovery.reinjections)),
        ("reinjected_flits", int(r.recovery.reinjected_flits)),
        ("recovered", int(r.recovery.recovered)),
        (
            "duplicates_suppressed",
            int(r.recovery.duplicates_suppressed),
        ),
        ("error", Json::Null),
    ])
}

fn error_metrics(e: &str) -> Json {
    Json::obj(vec![
        ("delivered", int(0)),
        ("permanent", int(0)),
        ("delivery_ratio", Json::Num(f64::NAN)),
        ("error", Json::Str(e.to_owned())),
    ])
}

/// Execution options for [`run_campaign`].
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Worker threads for the point shards.
    pub jobs: usize,
    /// Whether to consult / populate the shared result cache.
    pub use_cache: bool,
    /// Directory of the shared result cache (`results/cache`).
    pub cache_dir: PathBuf,
    /// Directory of the campaign manifests (`results/campaigns`).
    pub manifest_dir: PathBuf,
    /// Simulate at most this many pending points this invocation, then
    /// stop with the manifest partially complete (CI uses this to test
    /// resume; `None` = run to completion).
    pub max_points: Option<usize>,
    /// Cooperative-shutdown flag (set by the CLI's signal handler). When
    /// it rises, workers stop drawing new points, in-flight points finish,
    /// their results land in the manifest (flushed atomically), and the
    /// campaign returns with [`CampaignOutcome::interrupted`] set — a
    /// re-run resumes from the manifest exactly like after a crash.
    pub shutdown: Option<Arc<AtomicBool>>,
    /// Live-progress sink spec (a path, `-` for stdout, or `fd:N`). When
    /// set, the campaign streams JSONL snapshots (kind `"campaign"`): one
    /// after the manifest/cache restore scan, one after every flushed
    /// batch, and a final `done` snapshot. Purely observational — the
    /// manifest, cache, and point results are byte-identical either way.
    pub progress: Option<String>,
}

/// Outcome of a campaign invocation: where each point's result came from
/// and the final manifest document (points + reliability curves).
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Manifest location (`results/campaigns/<name>.json`).
    pub manifest_path: PathBuf,
    /// Total points in the campaign grid.
    pub total: usize,
    /// Points simulated by this invocation.
    pub simulated: usize,
    /// Points restored from the result cache.
    pub from_cache: usize,
    /// Points restored from a prior manifest of the same fingerprint.
    pub from_manifest: usize,
    /// Points left pending by `max_points`.
    pub deferred: usize,
    /// True when the shutdown flag rose mid-campaign: the run stopped
    /// early with the manifest flushed, and undrawn points stayed pending.
    pub interrupted: bool,
    /// The full manifest document as last written.
    pub doc: Json,
}

/// Runs (or resumes) a campaign: restores completed points from the
/// manifest and the result cache, shards the remainder over the sweep
/// worker pool in batches, and rewrites the manifest atomically after
/// every batch so a kill at any moment loses at most one batch of work.
///
/// # Errors
/// Returns an error when a sampled plan fails validation or the manifest
/// or cache directories cannot be written. Point-level failures do *not*
/// error — they are recorded per point and surface in the curves.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, String> {
    if spec.layouts.is_empty() {
        return Err("campaign has no layouts".to_owned());
    }
    let points = spec.points()?;
    let keys: Vec<String> = points.iter().map(CampaignPoint::content_key).collect();
    let fingerprint = spec.fingerprint();
    let manifest_path = opts.manifest_dir.join(format!("{}.json", spec.name));

    let mut results: Vec<Option<Json>> = vec![None; points.len()];
    let mut from_manifest = 0usize;
    if let Some(prior) = load_manifest(&manifest_path, &fingerprint) {
        for (i, key) in keys.iter().enumerate() {
            if let Some(m) = prior.get(key) {
                results[i] = Some(m.clone());
                from_manifest += 1;
            }
        }
    }

    let mut cache = if opts.use_cache {
        Some(ResultCache::open(&opts.cache_dir).map_err(|e| format!("cache: {e}"))?)
    } else {
        None
    };
    let mut from_cache = 0usize;
    if let Some(c) = &cache {
        for (i, key) in keys.iter().enumerate() {
            if results[i].is_none() {
                if let Some(m) = c.get(key) {
                    results[i] = Some(m.clone());
                    from_cache += 1;
                }
            }
        }
    }

    let mut pending: Vec<usize> = (0..points.len())
        .filter(|&i| results[i].is_none())
        .collect();
    let deferred = match opts.max_points {
        Some(max) if pending.len() > max => {
            let d = pending.len() - max;
            pending.truncate(max);
            d
        }
        _ => 0,
    };
    std::fs::create_dir_all(&opts.manifest_dir).map_err(|e| format!("manifest dir: {e}"))?;
    // Write an initial manifest so even a campaign killed inside its
    // first batch leaves a resumable fingerprinted state behind.
    let mut doc = manifest_doc(spec, &fingerprint, &points, &keys, &results);
    write_atomic(&manifest_path, &doc)?;

    let mut progress = match &opts.progress {
        Some(sink) => {
            let mut p = CampaignProgress::open(sink, &spec.name, points.len())
                .map_err(|e| format!("progress: {e}"))?;
            p.from_manifest = from_manifest;
            p.from_cache = from_cache;
            p.deferred = deferred;
            p.emit(false);
            Some(p)
        }
        None => None,
    };

    let stop = opts.shutdown.as_deref();
    let stopped = || stop.is_some_and(|s| s.load(Ordering::SeqCst));
    let mut interrupted = false;
    let mut simulated = 0usize;
    let batch = opts.jobs.max(2) * 2;
    for chunk in pending.chunks(batch) {
        if stopped() {
            interrupted = true;
            break;
        }
        let specs: Vec<&CampaignPoint> = chunk.iter().map(|&i| &points[i]).collect();
        let metrics = parallel_map_until(opts.jobs, specs, stop, run_campaign_point);
        for (&i, m) in chunk.iter().zip(metrics) {
            // `None` = the shutdown flag rose before the point was drawn;
            // it stays pending in the manifest and a re-run retries it.
            let Some(m) = m else {
                interrupted = true;
                continue;
            };
            simulated += 1;
            if let Some(p) = progress.as_mut() {
                p.simulated += 1;
                if m.get("error") != Some(&Json::Null) {
                    p.failed += 1;
                }
            }
            if let Some(c) = &mut cache {
                // Failed points are never cached: a re-run retries them.
                if m.get("error") == Some(&Json::Null) {
                    c.insert(keys[i].clone(), m.clone())
                        .map_err(|e| format!("cache: {e}"))?;
                }
            }
            results[i] = Some(m);
        }
        // Flush even (especially) when interrupted: every finished
        // in-flight point must land in the manifest before we return.
        doc = manifest_doc(spec, &fingerprint, &points, &keys, &results);
        write_atomic(&manifest_path, &doc)?;
        if let Some(p) = progress.as_mut() {
            p.emit(false);
        }
    }
    if let Some(p) = progress.as_mut() {
        p.interrupted = interrupted;
        p.emit(true);
    }

    Ok(CampaignOutcome {
        manifest_path,
        total: points.len(),
        simulated,
        from_cache,
        from_manifest,
        deferred,
        interrupted,
        doc,
    })
}

/// Coordinator-side progress accounting for one campaign invocation,
/// behind [`CampaignOptions::progress`]. Mirrors the sweep's pattern:
/// counts live here, every snapshot rebuilds a fresh registry (absolute
/// readings) and carries counter deltas against the previous snapshot.
struct CampaignProgress {
    sink: ProgressSink,
    name: String,
    total: usize,
    from_manifest: usize,
    from_cache: usize,
    deferred: usize,
    simulated: usize,
    failed: usize,
    interrupted: bool,
    seq: u64,
    started: Instant,
    prev: Registry,
    warned: bool,
}

impl CampaignProgress {
    fn open(spec: &str, name: &str, total: usize) -> std::io::Result<CampaignProgress> {
        Ok(CampaignProgress {
            sink: ProgressSink::open(spec)?,
            name: name.to_owned(),
            total,
            from_manifest: 0,
            from_cache: 0,
            deferred: 0,
            simulated: 0,
            failed: 0,
            interrupted: false,
            seq: 0,
            started: Instant::now(),
            prev: Registry::new(),
            warned: false,
        })
    }

    fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.set_counter("campaign.points.total", self.total as u64);
        reg.set_counter("campaign.points.from_manifest", self.from_manifest as u64);
        reg.set_counter("campaign.points.from_cache", self.from_cache as u64);
        reg.set_counter("campaign.points.simulated", self.simulated as u64);
        reg.set_counter("campaign.points.failed", self.failed as u64);
        reg.set_counter("campaign.points.deferred", self.deferred as u64);
        reg.set_counter("campaign.cache.hits", self.from_cache as u64);
        reg
    }

    fn emit(&mut self, done: bool) {
        let reg = self.registry();
        let elapsed = self.started.elapsed().as_secs_f64();
        let done_points = self.from_manifest + self.from_cache + self.simulated;
        let remaining = self
            .total
            .saturating_sub(done_points)
            .saturating_sub(self.deferred);
        let eta = if done {
            0.0
        } else if self.simulated > 0 && elapsed > 0.0 {
            remaining as f64 / (self.simulated as f64 / elapsed)
        } else {
            f64::NAN
        };
        let mut snap = Snapshot::new("campaign", self.seq);
        snap.field_str("name", &self.name)
            .field_u64("points_total", self.total as u64)
            .field_u64("points_done", done_points as u64)
            .field_u64("points_from_manifest", self.from_manifest as u64)
            .field_u64("points_from_cache", self.from_cache as u64)
            .field_u64("points_simulated", self.simulated as u64)
            .field_u64("points_failed", self.failed as u64)
            .field_u64("points_deferred", self.deferred as u64)
            .field_f64("elapsed_secs", elapsed)
            .field_f64("eta_secs", eta)
            .field_bool("interrupted", self.interrupted)
            .field_bool("done", done)
            .deltas("deltas", &reg, &self.prev)
            .registry("counters", &reg);
        if self.sink.emit(&snap).is_err() && !self.warned {
            eprintln!("warning: campaign progress sink write failed; further snapshots dropped");
            self.warned = true;
        }
        self.seq += 1;
        self.prev = reg;
    }
}

/// Loads `key -> metrics` of every `done` point from a manifest, or
/// `None` when it is absent, unreadable, or fingerprinted differently.
fn load_manifest(
    path: &Path,
    fingerprint: &str,
) -> Option<std::collections::HashMap<String, Json>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = json::parse(&text).ok()?;
    if doc.get("fingerprint").and_then(Json::as_str) != Some(fingerprint) {
        return None;
    }
    let mut out = std::collections::HashMap::new();
    for p in doc.get("points").and_then(Json::as_arr)? {
        if p.get("status").and_then(Json::as_str) != Some("done") {
            continue;
        }
        let key = p.get("key").and_then(Json::as_str)?;
        let metrics = p.get("metrics")?;
        out.insert(key.to_owned(), metrics.clone());
    }
    Some(out)
}

fn write_atomic(path: &Path, doc: &Json) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, doc.pretty()).map_err(|e| format!("manifest: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("manifest: {e}"))
}

fn manifest_doc(
    spec: &CampaignSpec,
    fingerprint: &str,
    points: &[CampaignPoint],
    keys: &[String],
    results: &[Option<Json>],
) -> Json {
    let completed = results.iter().filter(|r| r.is_some()).count();
    let point_objs: Vec<Json> = points
        .iter()
        .zip(keys)
        .zip(results)
        .map(|((p, key), r)| {
            Json::obj(vec![
                ("layout", Json::Str(p.layout.clone())),
                ("kills", int(p.kills as u64)),
                ("sample", int(p.sample as u64)),
                ("key", Json::Str(key.clone())),
                (
                    "status",
                    Json::Str(if r.is_some() { "done" } else { "pending" }.to_owned()),
                ),
                ("metrics", r.clone().unwrap_or(Json::Null)),
            ])
        })
        .collect();
    let recovery = spec.recovery.as_ref().map_or(Json::Null, |r| {
        Json::Str(format!(
            "{} {} {}",
            r.retry.max_attempts, r.retry.timeout, r.retention
        ))
    });
    let doc = Json::obj(vec![
        ("schema_version", int(u64::from(SCHEMA_VERSION))),
        ("kind", Json::Str("campaign".to_owned())),
        ("name", Json::Str(spec.name.clone())),
        ("fingerprint", Json::Str(fingerprint.to_owned())),
        (
            "spec",
            Json::obj(vec![
                (
                    "layouts",
                    Json::Arr(
                        spec.layouts
                            .iter()
                            .map(|(n, _)| Json::Str(n.clone()))
                            .collect(),
                    ),
                ),
                (
                    "kills",
                    Json::Arr(spec.kills.iter().map(|&k| int(k as u64)).collect()),
                ),
                ("plans_per_cell", int(spec.plans_per_cell as u64)),
                ("seed", int(spec.seed)),
                ("bursts", int(spec.bursts)),
                ("spacing", int(spec.spacing)),
                ("stall_limit", int(spec.stall_limit)),
                ("recovery", recovery),
            ]),
        ),
        ("total", int(points.len() as u64)),
        ("completed", int(completed as u64)),
        ("points", Json::Arr(point_objs)),
    ]);
    let curves = curves_from(&doc);
    match doc {
        Json::Obj(mut members) => {
            members.push(("curves".to_owned(), curves));
            Json::Obj(members)
        }
        other => other,
    }
}

/// Aggregates a manifest's `done` points into reliability-curve rows, one
/// per (layout × kill count): delivery ratio (mean and worst sample), p99
/// latency degradation versus the layout's fault-free baseline,
/// reconfiguration downtime (mean drain-time inflation in cycles) and
/// recovery-traffic overhead (reinjected flits per delivered packet).
/// Pure function of the document, so `heteronoc report` renders partial
/// manifests identically.
pub fn curves_from(doc: &Json) -> Json {
    let Some(points) = doc.get("points").and_then(Json::as_arr) else {
        return Json::Arr(Vec::new());
    };
    // Cell order follows first appearance, which is grid order.
    let mut order: Vec<(String, u64)> = Vec::new();
    for p in points {
        let layout = p.get("layout").and_then(Json::as_str).unwrap_or("?");
        let kills = p.get("kills").and_then(Json::as_u64).unwrap_or(0);
        if !order.iter().any(|(l, k)| l == layout && *k == kills) {
            order.push((layout.to_owned(), kills));
        }
    }
    // Fault-free reference per layout: mean finished_at / p99 of its k=0
    // cell (a single deterministic sample in practice).
    let baseline = |layout: &str, field: &str| -> Option<f64> {
        let (sum, n) = points
            .iter()
            .filter(|p| {
                p.get("layout").and_then(Json::as_str) == Some(layout)
                    && p.get("kills").and_then(Json::as_u64) == Some(0)
                    && p.get("status").and_then(Json::as_str) == Some("done")
            })
            .filter_map(|p| p.get("metrics")?.get(field)?.as_f64())
            .fold((0.0, 0u32), |(s, n), v| (s + v, n + 1));
        (n > 0).then(|| sum / f64::from(n))
    };
    let rows = order
        .iter()
        .map(|(layout, kills)| {
            let cell: Vec<&Json> = points
                .iter()
                .filter(|p| {
                    p.get("layout").and_then(Json::as_str) == Some(layout.as_str())
                        && p.get("kills").and_then(Json::as_u64) == Some(*kills)
                })
                .collect();
            let done: Vec<&Json> = cell
                .iter()
                .filter(|p| p.get("status").and_then(Json::as_str) == Some("done"))
                .copied()
                .collect();
            let metric = |p: &Json, f: &str| p.get("metrics").and_then(|m| m.get(f))?.as_f64();
            let oks: Vec<&Json> = done
                .iter()
                .filter(|p| {
                    p.get("metrics")
                        .and_then(|m| m.get("error"))
                        .is_some_and(|e| *e == Json::Null)
                })
                .copied()
                .collect();
            let failed = done.len() - oks.len();
            let mean = |f: &str| -> f64 {
                if oks.is_empty() {
                    return f64::NAN;
                }
                #[allow(clippy::cast_precision_loss)]
                let n = oks.len() as f64;
                oks.iter().filter_map(|p| metric(p, f)).sum::<f64>() / n
            };
            let delivery_min = oks
                .iter()
                .filter_map(|p| metric(p, "delivery_ratio"))
                .fold(f64::INFINITY, f64::min);
            let p99 = mean("latency_p99");
            let p99_x = baseline(layout, "latency_p99")
                .filter(|&b| b > 0.0)
                .map_or(f64::NAN, |b| p99 / b);
            let downtime = baseline(layout, "finished_at")
                .map_or(f64::NAN, |b| (mean("finished_at") - b).max(0.0));
            let delivered = mean("delivered");
            let overhead = if delivered > 0.0 {
                mean("reinjected_flits") / delivered
            } else {
                f64::NAN
            };
            Json::obj(vec![
                ("layout", Json::Str(layout.clone())),
                ("kills", int(*kills)),
                ("plans", int(cell.len() as u64)),
                ("done", int(done.len() as u64)),
                ("failed", int(failed as u64)),
                ("delivery_mean", Json::Num(mean("delivery_ratio"))),
                (
                    "delivery_min",
                    Json::Num(if delivery_min.is_finite() {
                        delivery_min
                    } else {
                        f64::NAN
                    }),
                ),
                ("latency_p99_mean", Json::Num(p99)),
                ("p99_x_baseline", Json::Num(p99_x)),
                ("downtime_cycles", Json::Num(downtime)),
                ("recovery_overhead", Json::Num(overhead)),
                ("reroutes_mean", Json::Num(mean("reroutes"))),
            ])
        })
        .collect();
    Json::Arr(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteronoc::noc::config::RouterCfg;
    use heteronoc::noc::topology::TopologyKind;

    fn mesh3() -> NetworkConfig {
        NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 3,
                height: 3,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        )
    }

    fn tiny_spec(name: &str) -> CampaignSpec {
        CampaignSpec {
            name: name.to_owned(),
            layouts: vec![("mesh3".to_owned(), mesh3())],
            kills: vec![1],
            plans_per_cell: 2,
            seed: 7,
            bursts: 1,
            spacing: 8,
            stall_limit: 20_000,
            recovery: Some(RecoveryPolicy::default()),
        }
    }

    fn tmp_dirs(tag: &str) -> (PathBuf, PathBuf) {
        let base =
            std::env::temp_dir().join(format!("heteronoc-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        (base.join("cache"), base.join("campaigns"))
    }

    fn opts(tag: &str) -> CampaignOptions {
        let (cache_dir, manifest_dir) = tmp_dirs(tag);
        CampaignOptions {
            jobs: 2,
            use_cache: true,
            cache_dir,
            manifest_dir,
            max_points: None,
            shutdown: None,
            progress: None,
        }
    }

    #[test]
    fn progress_stream_emits_valid_snapshots_and_a_final_done() {
        let spec = tiny_spec("progress");
        let shared = opts("progress");
        let progress_path = shared
            .manifest_dir
            .parent()
            .unwrap()
            .join("campaign-progress.jsonl");
        std::fs::create_dir_all(progress_path.parent().unwrap()).unwrap();
        let with_progress = CampaignOptions {
            use_cache: false,
            progress: Some(progress_path.to_string_lossy().into_owned()),
            ..shared
        };
        let outcome = run_campaign(&spec, &with_progress).unwrap();
        assert_eq!(outcome.simulated, 3);

        let text = std::fs::read_to_string(&progress_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // One restore-scan snapshot, >=1 batch snapshot, one final done.
        assert!(lines.len() >= 3, "expected >=3 snapshots, got {lines:?}");
        for (i, line) in lines.iter().enumerate() {
            let snap = json::parse(line).unwrap();
            assert_eq!(snap.get("schema").and_then(Json::as_u64), Some(1));
            assert_eq!(snap.get("kind").and_then(Json::as_str), Some("campaign"));
            assert_eq!(snap.get("seq").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(snap.get("points_total").and_then(Json::as_u64), Some(3));
        }
        let last = json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("done").and_then(Json::as_bool), Some(true));
        assert_eq!(last.get("points_done").and_then(Json::as_u64), Some(3));
        assert_eq!(last.get("eta_secs").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            last.get("counters")
                .and_then(|c| c.get("campaign.points.simulated"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }

    #[test]
    fn raised_shutdown_flag_stops_before_dispatch_and_flushes_the_manifest() {
        let spec = tiny_spec("shutdown");
        let flag = Arc::new(AtomicBool::new(true));
        let first = CampaignOptions {
            use_cache: false,
            shutdown: Some(Arc::clone(&flag)),
            ..opts("shutdown")
        };
        let o1 = run_campaign(&spec, &first).unwrap();
        assert!(o1.interrupted);
        assert_eq!(o1.simulated, 0);
        // The fingerprinted manifest flushed with every point pending.
        assert!(o1.manifest_path.exists());
        assert_eq!(o1.doc.get("completed").and_then(Json::as_u64), Some(0));
        // Lowering the flag resumes from that manifest and completes.
        let second = CampaignOptions {
            shutdown: None,
            ..first.clone()
        };
        let o2 = run_campaign(&spec, &second).unwrap();
        assert!(!o2.interrupted);
        assert_eq!(o2.simulated, 3);
        assert_eq!(o2.doc.get("completed").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let spec = tiny_spec("det");
        let a = spec.points().unwrap();
        let b = spec.points().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.plan, y.plan, "sampling must be a pure function");
        }
        // Baseline cell first, fault-free, then two distinct samples.
        assert_eq!(a[0].kills, 0);
        assert!(a[0].plan.hard.is_empty());
        assert_eq!(a.len(), 3);
        assert_ne!(a[1].plan.hard, a[2].plan.hard, "samples must differ");
        assert_eq!(a[1].plan.hard.len(), 1);
    }

    #[test]
    fn survivable_campaign_delivers_everything() {
        let spec = tiny_spec("full");
        let o = run_campaign(&spec, &opts("full")).unwrap();
        assert_eq!(o.total, 3);
        assert_eq!(o.simulated, 3);
        let curves = o.doc.get("curves").and_then(Json::as_arr).unwrap();
        // Single-link kills never partition a 3x3 mesh; with end-to-end
        // recovery enabled every cell must report full delivery.
        for row in curves {
            let d = row.get("delivery_mean").and_then(Json::as_f64).unwrap();
            assert!((d - 1.0).abs() < 1e-12, "delivery {d} in {}", row.pretty());
            assert_eq!(row.get("failed").and_then(Json::as_u64), Some(0));
        }
        let killed = curves
            .iter()
            .find(|r| r.get("kills").and_then(Json::as_u64) == Some(1))
            .unwrap();
        assert!(
            killed.get("reroutes_mean").and_then(Json::as_f64).unwrap() > 0.0,
            "a mid-run link kill must trigger a reroute"
        );
    }

    #[test]
    fn interrupted_campaign_resumes_from_the_manifest() {
        let spec = tiny_spec("resume");
        let shared = opts("resume");
        // Simulate a kill after one point: cap the first invocation.
        let first = CampaignOptions {
            max_points: Some(1),
            use_cache: false,
            ..shared.clone()
        };
        let o1 = run_campaign(&spec, &first).unwrap();
        assert_eq!(o1.simulated, 1);
        assert_eq!(o1.deferred, 2);
        assert_eq!(o1.doc.get("completed").and_then(Json::as_u64), Some(1));
        // Second invocation restores the completed point from the
        // manifest and simulates only the remainder.
        let second = CampaignOptions {
            use_cache: false,
            ..shared.clone()
        };
        let o2 = run_campaign(&spec, &second).unwrap();
        assert_eq!(o2.from_manifest, 1);
        assert_eq!(o2.simulated, 2);
        assert_eq!(o2.doc.get("completed").and_then(Json::as_u64), Some(3));
        // Third invocation is a pure manifest replay.
        let o3 = run_campaign(&spec, &second).unwrap();
        assert_eq!(o3.from_manifest, 3);
        assert_eq!(o3.simulated, 0);
    }

    #[test]
    fn cache_resolves_points_across_campaign_names() {
        let spec = tiny_spec("cache-a");
        let shared = opts("cache");
        let o1 = run_campaign(&spec, &shared).unwrap();
        assert_eq!(o1.simulated, 3);
        // Renaming the campaign keeps the cache keys (name is excluded
        // from the canonical form), so nothing re-simulates.
        let renamed = CampaignSpec {
            name: "cache-b".to_owned(),
            ..spec
        };
        let o2 = run_campaign(&renamed, &shared).unwrap();
        assert_eq!(o2.simulated, 0);
        assert_eq!(o2.from_cache, 3);
    }

    #[test]
    fn editing_the_spec_invalidates_the_manifest() {
        let spec = tiny_spec("fp");
        let shared = CampaignOptions {
            use_cache: false,
            ..opts("fp")
        };
        run_campaign(&spec, &shared).unwrap();
        let edited = CampaignSpec {
            seed: spec.seed + 1,
            ..spec
        };
        let o = run_campaign(&edited, &shared).unwrap();
        assert_eq!(o.from_manifest, 0, "stale fingerprint must be ignored");
        assert_eq!(o.simulated, 3);
    }
}
