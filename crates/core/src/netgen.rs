//! Turns a [`Layout`] into a simulator [`NetworkConfig`] (§2-§3).
//!
//! * Baseline: homogeneous 3 VCs / 192b / 2.20 GHz.
//! * `+B` layouts: buffer-only redistribution — small (2 VCs) and big
//!   (6 VCs) routers, everything still 192b wide.
//! * `+BL` layouts: combined buffer + link redistribution — 128b flits,
//!   128b links between small routers, 256b links touching a big router
//!   (which then carry two combined flits per cycle).
//!
//! All heterogeneous networks run at the worst-case (big-router) frequency
//! of 2.07 GHz (§3.4).

use heteronoc_noc::config::{LinkWidths, NetworkConfig};
use heteronoc_noc::routing::{RouteTable, RoutingKind};
use heteronoc_noc::topology::TopologyKind;
use heteronoc_noc::types::Bits;

use crate::layout::Layout;
use crate::router_class::{heteronoc_frequency_ghz, RouterClass};

/// Builds the network configuration for `layout` on a `width x height`
/// grid of the given `topology` family (mesh for the main evaluation,
/// torus for §5.1.1).
///
/// # Panics
/// Panics if `topology`'s dimensions disagree with `width`/`height`, or for
/// a custom placement built for a different grid.
pub fn network_config(layout: &Layout, topology: TopologyKind) -> NetworkConfig {
    let (width, height) = match topology {
        TopologyKind::Mesh { width, height }
        | TopologyKind::Torus { width, height }
        | TopologyKind::CMesh { width, height, .. }
        | TopologyKind::FlattenedButterfly { width, height, .. } => (width, height),
    };
    match layout {
        Layout::Baseline => NetworkConfig::homogeneous(
            topology,
            RouterClass::Baseline.router_cfg(),
            RouterClass::Baseline.width(),
            RouterClass::Baseline.freq_ghz(),
        ),
        _ => {
            let placement = layout.placement(width, height);
            let routers = placement
                .mask()
                .iter()
                .map(|&b| {
                    if b {
                        RouterClass::Big.router_cfg()
                    } else {
                        RouterClass::Small.router_cfg()
                    }
                })
                .collect();
            let (flit_width, link_widths) = if layout.redistributes_links() {
                (
                    RouterClass::Small.width(),
                    LinkWidths::ByBigRouters {
                        big: placement.mask().to_vec(),
                        narrow: RouterClass::Small.width(),
                        wide: RouterClass::Big.width(),
                    },
                )
            } else {
                (
                    RouterClass::Baseline.width(),
                    LinkWidths::Uniform(RouterClass::Baseline.width()),
                )
            };
            NetworkConfig {
                topology,
                flit_width,
                routers,
                link_widths,
                routing: RoutingKind::DimensionOrder,
                frequency_ghz: heteronoc_frequency_ghz(),
                escape_timeout: 16,
            }
        }
    }
}

/// Convenience: `layout` on the paper's 8x8 mesh.
pub fn mesh_config(layout: &Layout) -> NetworkConfig {
    network_config(
        layout,
        TopologyKind::Mesh {
            width: 8,
            height: 8,
        },
    )
}

/// Like [`mesh_config`] but with table-based routing for expedited flows
/// between the given hub routers and everywhere else (§7's
/// HeteroNoC-Table+XY). The top VC of every port becomes the reserved
/// escape VC.
pub fn mesh_config_with_table(
    layout: &Layout,
    hubs: &[heteronoc_noc::types::RouterId],
) -> NetworkConfig {
    let mut cfg = mesh_config(layout);
    let graph = cfg.build_graph();
    cfg.routing = RoutingKind::TableXy(RouteTable::for_hubs(&graph, hubs));
    cfg
}

/// One flit per paper packet kind, in flits, for a given configuration:
/// `(data_flits, address_flits)` — 1024b data and 1-flit address packets
/// (§4).
pub fn packet_flits(cfg: &NetworkConfig) -> (u32, u32) {
    (Bits(1024).flits(cfg.flit_width), 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteronoc_noc::network::Network;
    use heteronoc_noc::types::RouterId;

    #[test]
    fn baseline_config_matches_paper() {
        let cfg = mesh_config(&Layout::Baseline);
        assert_eq!(cfg.flit_width, Bits(192));
        assert_eq!(cfg.frequency_ghz, 2.20);
        assert!(cfg.routers.iter().all(|r| r.vcs_per_port == 3));
        assert_eq!(packet_flits(&cfg), (6, 1));
        assert!(cfg.validate(&cfg.build_graph()).is_ok());
    }

    #[test]
    fn plus_b_keeps_192b_links() {
        let cfg = mesh_config(&Layout::DiagonalB);
        assert_eq!(cfg.flit_width, Bits(192));
        assert_eq!(cfg.frequency_ghz, 2.07);
        assert!(matches!(cfg.link_widths, LinkWidths::Uniform(Bits(192))));
        assert_eq!(packet_flits(&cfg), (6, 1));
        let big = cfg.routers.iter().filter(|r| r.vcs_per_port == 6).count();
        let small = cfg.routers.iter().filter(|r| r.vcs_per_port == 2).count();
        assert_eq!((big, small), (16, 48));
    }

    #[test]
    fn plus_bl_redistributes_links() {
        let cfg = mesh_config(&Layout::DiagonalBL);
        assert_eq!(cfg.flit_width, Bits(128));
        assert_eq!(packet_flits(&cfg), (8, 1));
        match &cfg.link_widths {
            LinkWidths::ByBigRouters { narrow, wide, big } => {
                assert_eq!(*narrow, Bits(128));
                assert_eq!(*wide, Bits(256));
                assert_eq!(big.iter().filter(|&&b| b).count(), 16);
            }
            other => panic!("expected ByBigRouters, got {other:?}"),
        }
        assert!(cfg.validate(&cfg.build_graph()).is_ok());
    }

    #[test]
    fn vc_conservation_across_all_layouts() {
        // Total VCs per port summed over routers is constant: 64*3 = 192.
        let baseline: usize = mesh_config(&Layout::Baseline)
            .routers
            .iter()
            .map(|r| r.vcs_per_port)
            .sum();
        for l in Layout::all_heterogeneous() {
            let total: usize = mesh_config(&l).routers.iter().map(|r| r.vcs_per_port).sum();
            assert_eq!(total, baseline, "{l}");
        }
    }

    #[test]
    fn all_seven_configs_build_networks() {
        for l in Layout::all_seven() {
            let cfg = mesh_config(&l);
            Network::new(cfg).unwrap_or_else(|e| panic!("{l}: {e}"));
        }
    }

    #[test]
    fn torus_configs_build() {
        for l in [Layout::Baseline, Layout::DiagonalBL] {
            let cfg = network_config(
                &l,
                TopologyKind::Torus {
                    width: 8,
                    height: 8,
                },
            );
            Network::new(cfg).unwrap_or_else(|e| panic!("{l}: {e}"));
        }
    }

    #[test]
    fn table_config_reserves_escape() {
        let cfg = mesh_config_with_table(&Layout::DiagonalBL, &[RouterId(0), RouterId(63)]);
        assert!(cfg.routing.reserves_escape_vc());
        Network::new(cfg).expect("valid table config");
    }
}
