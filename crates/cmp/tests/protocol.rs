//! Coherence-protocol behaviour tests exercising the directory MESI state
//! machine through the full system (network included).

use heteronoc_cmp::{corners4, CmpConfig, CmpSystem, CoreParams, MemParams};
use heteronoc_noc::config::{NetworkConfig, RouterCfg};
use heteronoc_noc::topology::TopologyKind;
use heteronoc_noc::types::Bits;
use heteronoc_traffic::trace::{MemOp, TraceRecord, TraceSource, VecTrace};

fn net4() -> NetworkConfig {
    NetworkConfig::homogeneous(
        TopologyKind::Mesh {
            width: 4,
            height: 4,
        },
        RouterCfg::BASELINE,
        Bits(192),
        2.2,
    )
}

fn cfg() -> CmpConfig {
    CmpConfig {
        net: net4(),
        mem: MemParams {
            dram_latency: 40,
            ..MemParams::default()
        },
        mc_nodes: corners4(4, 4),
        core_clock_ghz: 2.2,
        expedited_nodes: Vec::new(),
    }
}

fn rec(gap: u32, op: MemOp, addr: u64) -> TraceRecord {
    TraceRecord { gap, op, addr }
}

fn system(per_core: Vec<Vec<TraceRecord>>) -> CmpSystem {
    let traces: Vec<Box<dyn TraceSource + Send>> = per_core
        .into_iter()
        .map(|v| Box::new(VecTrace::new(v)) as Box<dyn TraceSource + Send>)
        .collect();
    CmpSystem::new(cfg(), vec![CoreParams::OUT_OF_ORDER; 16], traces)
}

fn run(sys: &mut CmpSystem) {
    sys.run(5_000_000);
    assert!(sys.finished(), "system must drain");
}

#[test]
fn dirty_l1_eviction_writes_back_and_reloads_from_l2() {
    // Store 1500 distinct blocks (L1 holds 256) then reload them: the
    // reload must be served by the L2 (dirty copies written back), not by
    // extra DRAM reads.
    let blocks: Vec<u64> = (0..1500u64).map(|i| 0x40_0000 + i * 128).collect();
    let mut t = Vec::new();
    for &b in &blocks {
        t.push(rec(0, MemOp::Store, b));
    }
    for &b in &blocks {
        t.push(rec(0, MemOp::Load, b));
    }
    let mut per_core = vec![Vec::new(); 16];
    per_core[5] = t;
    let mut sys = system(per_core);
    run(&mut sys);
    assert_eq!(sys.committed()[5], 3000);
    // Exactly one DRAM fetch per distinct block, reloads L2-served.
    assert_eq!(sys.stats().mem_reads, 1500);
}

#[test]
fn l2_capacity_evictions_write_dirty_lines_to_memory() {
    // One bank holds 8192 lines; all blocks homed at bank 0 means block %
    // 16 == 0. Write far more than one bank's capacity of such blocks.
    let n = 12_000u64;
    let mut t = Vec::new();
    for i in 0..n {
        t.push(rec(0, MemOp::Store, (i * 16) * 128)); // home bank 0
    }
    let mut per_core = vec![Vec::new(); 16];
    per_core[0] = t;
    let mut sys = system(per_core);
    sys.run(30_000_000);
    assert!(sys.finished());
    assert!(
        sys.stats().mem_writes > 0,
        "L2 overflow of dirty lines must produce memory writebacks"
    );
}

#[test]
fn producer_consumer_ping_pong() {
    // Cores 2 and 10 alternately write the same block with gaps: ownership
    // must migrate back and forth through forwards, never deadlocking.
    let block = 0x7_0000u64;
    let mut a = Vec::new();
    let mut b = Vec::new();
    for _ in 0..40 {
        a.push(rec(120, MemOp::Store, block));
        b.push(rec(120, MemOp::Store, block));
    }
    let mut per_core = vec![Vec::new(); 16];
    per_core[2] = a;
    per_core[10] = b;
    let mut sys = system(per_core);
    run(&mut sys);
    // Only the very first access can reach DRAM.
    assert_eq!(sys.stats().mem_reads, 1);
}

#[test]
fn wide_sharing_then_write_invalidates_all_readers() {
    // 15 cores read one block, then core 15 writes it, then all read again:
    // the second read round must re-fetch (via the owner), not from DRAM.
    let block = 0x9_0000u64;
    let mut per_core: Vec<Vec<TraceRecord>> = (0..15)
        .map(|_| vec![rec(0, MemOp::Load, block), rec(3000, MemOp::Load, block)])
        .collect();
    per_core.push(vec![rec(1000, MemOp::Store, block)]);
    let mut sys = system(per_core);
    run(&mut sys);
    assert_eq!(sys.stats().mem_reads, 1, "one cold fetch only");
    for c in 0..15 {
        assert_eq!(sys.committed()[c], 3002);
    }
}

#[test]
fn mshr_limit_throttles_but_preserves_correctness() {
    // 64 independent miss addresses issued back-to-back against 16 MSHRs.
    let mut t = Vec::new();
    for i in 0..64u64 {
        t.push(rec(0, MemOp::Load, 0xB_0000 + i * 128));
    }
    let mut per_core = vec![Vec::new(); 16];
    per_core[7] = t;
    let mut sys = system(per_core);
    run(&mut sys);
    assert_eq!(sys.committed()[7], 64);
    assert_eq!(sys.stats().mem_reads, 64);
}

#[test]
fn read_after_remote_write_sees_forwarded_data_path() {
    // Core 1 writes; later core 9 reads the same block: the directory must
    // forward from core 1 (owner), producing zero additional DRAM reads.
    let block = 0xC_0000u64;
    let mut per_core = vec![Vec::new(); 16];
    per_core[1] = vec![rec(0, MemOp::Store, block)];
    per_core[9] = vec![rec(2000, MemOp::Load, block)];
    let mut sys = system(per_core);
    run(&mut sys);
    assert_eq!(sys.stats().mem_reads, 1);
    assert_eq!(sys.committed()[9], 2001);
}

#[test]
fn store_to_shared_line_upgrades_without_memory() {
    let block = 0xD_0000u64;
    let mut per_core = vec![Vec::new(); 16];
    // Load then (after a long gap) store on the same core: E-state silent
    // upgrade — exactly one memory read.
    per_core[4] = vec![rec(0, MemOp::Load, block), rec(2000, MemOp::Store, block)];
    let mut sys = system(per_core);
    run(&mut sys);
    assert_eq!(sys.stats().mem_reads, 1);
}
