//! Memory controllers: placements (baseline corners, and the diamond /
//! diagonal layouts of Abts et al. co-evaluated in §6), the DRAM timing
//! model, and the closed-loop uniform-random request-response experiment of
//! Fig. 13.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use heteronoc_noc::config::NetworkConfig;
use heteronoc_noc::network::Network;
use heteronoc_noc::packet::PacketClass;
use heteronoc_noc::types::{Cycle, NodeId};

use crate::metrics::Welford;
use crate::msg::{CONTROL_BITS, DATA_BITS};

/// The baseline placement: 4 controllers at the mesh corners (Table 2).
pub fn corners4(width: usize, height: usize) -> Vec<NodeId> {
    vec![
        NodeId(0),
        NodeId(width - 1),
        NodeId((height - 1) * width),
        NodeId(height * width - 1),
    ]
}

/// The diamond placement of Abts et al. (16 controllers on 8x8): diagonal
/// stripes `(x + y) % 4 == 3`, giving two controllers per row and per
/// column, uniformly and symmetrically distributed.
pub fn diamond16(width: usize, height: usize) -> Vec<NodeId> {
    (0..height)
        .flat_map(|y| (0..width).map(move |x| (x, y)))
        .filter(|&(x, y)| (x + y) % 4 == 3)
        .map(|(x, y)| NodeId(y * width + x))
        .collect()
}

/// The diagonal placement: 16 controllers on both grid diagonals —
/// co-located with the Diagonal+BL big routers (§6: "the memory controllers
/// are attached to big routers").
pub fn diagonal16(side: usize) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = (0..side)
        .flat_map(|i| [NodeId(i * side + i), NodeId(i * side + side - 1 - i)])
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// DRAM + controller timing model: fixed access latency with a bounded
/// number of in-service requests (extra requests queue).
#[derive(Clone, Debug)]
pub struct MemCtrl {
    latency: Cycle,
    concurrent: usize,
    active: Vec<(Cycle, u64)>,
    queue: VecDeque<u64>,
}

impl MemCtrl {
    /// Controller with the given DRAM `latency` and in-service capacity.
    pub fn new(latency: Cycle, concurrent: usize) -> Self {
        Self {
            latency,
            concurrent: concurrent.max(1),
            active: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Accepts a request identified by the opaque `token`.
    pub fn request(&mut self, now: Cycle, token: u64) {
        if self.active.len() < self.concurrent {
            self.active.push((now + self.latency, token));
        } else {
            self.queue.push_back(token);
        }
    }

    /// Returns the tokens whose service completes at or before `now`.
    pub fn completed(&mut self, now: Cycle) -> Vec<u64> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].0 <= now {
                done.push(self.active.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        while self.active.len() < self.concurrent {
            match self.queue.pop_front() {
                Some(tok) => self.active.push((now + self.latency, tok)),
                None => break,
            }
        }
        done
    }

    /// Requests currently queued or in service.
    pub fn pending(&self) -> usize {
        self.active.len() + self.queue.len()
    }
}

/// Result of the closed-loop request-response experiment.
#[derive(Clone, Debug)]
pub struct ClosedLoopStats {
    /// Round-trip latency (request generation to response ejection) in
    /// network cycles.
    pub round_trip: Welford,
    /// One-way request latency (generation to controller ejection).
    pub request_leg: Welford,
    /// Requests completed.
    pub completed: u64,
    /// Cycles simulated.
    pub cycles: Cycle,
}

/// Runs the §6 closed-loop uniform-random experiment: every non-controller
/// node keeps up to `mshrs` requests outstanding to uniformly chosen memory
/// controllers; controllers reply with a cache-line data packet after
/// `dram_latency` network cycles. Measures round-trip and request-leg
/// latency over `measure` completed requests (after warming up with a
/// quarter as many).
pub fn run_closed_loop(
    cfg: NetworkConfig,
    mcs: &[NodeId],
    mshrs: usize,
    dram_latency: Cycle,
    measure: u64,
    seed: u64,
) -> ClosedLoopStats {
    let mut net = Network::new(cfg).expect("valid network config");
    let n = net.graph().num_nodes();
    let is_mc: Vec<bool> = {
        let mut v = vec![false; n];
        for m in mcs {
            v[m.index()] = true;
        }
        v
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outstanding = vec![0usize; n];
    let mut birth: Vec<std::collections::HashMap<u64, Cycle>> =
        vec![std::collections::HashMap::new(); n];
    let mut ctrls: Vec<MemCtrl> = (0..n).map(|_| MemCtrl::new(dram_latency, 16)).collect();
    let mut round_trip = Welford::new();
    let mut request_leg = Welford::new();
    let mut completed = 0u64;
    let warmup = measure / 4;
    let mut req_id = 0u64;

    while completed < warmup + measure && net.now() < 4_000_000 {
        let now = net.now();
        // Inject new requests greedily up to the MSHR limit.
        for node in 0..n {
            if is_mc[node] {
                continue;
            }
            while outstanding[node] < mshrs {
                let mc = mcs[rng.random_range(0..mcs.len())];
                let tag = req_id;
                req_id += 1;
                net.enqueue(NodeId(node), mc, CONTROL_BITS, PacketClass::Control, tag);
                birth[node].insert(tag, now);
                outstanding[node] += 1;
            }
        }
        net.step();
        // Controller completions -> responses.
        for (m, ctrl) in ctrls.iter_mut().enumerate() {
            if !is_mc[m] {
                continue;
            }
            for token in ctrl.completed(net.now()) {
                let node = (token >> 40) as usize;
                let tag = token & ((1 << 40) - 1);
                net.enqueue(NodeId(m), NodeId(node), DATA_BITS, PacketClass::Data, tag);
            }
        }
        for d in net.drain_delivered() {
            let dst = d.packet.dst.index();
            if is_mc[dst] {
                // Request arrived at a controller.
                let src = d.packet.src.index();
                if completed >= warmup {
                    request_leg.add((d.retire - d.packet.birth) as f64);
                }
                ctrls[dst].request(d.retire, ((src as u64) << 40) | d.packet.tag);
            } else {
                // Response back at the core.
                let t0 = birth[dst].remove(&d.packet.tag).expect("known request");
                outstanding[dst] -= 1;
                if completed >= warmup {
                    round_trip.add((d.retire - t0) as f64);
                }
                completed += 1;
            }
        }
    }
    ClosedLoopStats {
        round_trip,
        request_leg,
        completed: completed.saturating_sub(warmup),
        cycles: net.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteronoc_noc::config::{NetworkConfig, RouterCfg};
    use heteronoc_noc::topology::TopologyKind;
    use heteronoc_noc::types::Bits;

    #[test]
    fn placements_have_expected_sizes() {
        assert_eq!(
            corners4(8, 8),
            vec![NodeId(0), NodeId(7), NodeId(56), NodeId(63)]
        );
        let d = diamond16(8, 8);
        assert_eq!(d.len(), 16);
        // Two per row and per column.
        for k in 0..8 {
            assert_eq!(
                d.iter().filter(|n| n.index() / 8 == k).count(),
                2,
                "row {k}"
            );
            assert_eq!(
                d.iter().filter(|n| n.index() % 8 == k).count(),
                2,
                "col {k}"
            );
        }
        let g = diagonal16(8);
        assert_eq!(g.len(), 16);
        assert!(g.contains(&NodeId(0)) && g.contains(&NodeId(63)));
    }

    #[test]
    fn memctrl_respects_concurrency_and_latency() {
        let mut mc = MemCtrl::new(100, 2);
        mc.request(0, 1);
        mc.request(0, 2);
        mc.request(0, 3); // queued
        assert_eq!(mc.pending(), 3);
        assert!(mc.completed(99).is_empty());
        let mut done = mc.completed(100);
        done.sort_unstable();
        assert_eq!(done, vec![1, 2]);
        // Token 3 started service at 100.
        assert!(mc.completed(150).is_empty());
        assert_eq!(mc.completed(200), vec![3]);
        assert_eq!(mc.pending(), 0);
    }

    #[test]
    fn closed_loop_completes_and_measures() {
        let cfg = NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 4,
                height: 4,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        );
        let stats = run_closed_loop(cfg, &corners4(4, 4), 4, 50, 500, 1);
        assert!(stats.completed >= 500);
        assert!(stats.round_trip.mean() > 50.0, "round trip includes DRAM");
        assert!(stats.request_leg.mean() > 4.0);
        assert!(stats.request_leg.mean() < stats.round_trip.mean());
        assert!(stats.round_trip.stddev() >= 0.0);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let cfg = || {
            NetworkConfig::homogeneous(
                TopologyKind::Mesh {
                    width: 4,
                    height: 4,
                },
                RouterCfg::BASELINE,
                Bits(192),
                2.2,
            )
        };
        let a = run_closed_loop(cfg(), &corners4(4, 4), 2, 10, 200, 7);
        let b = run_closed_loop(cfg(), &corners4(4, 4), 2, 10, 200, 7);
        assert_eq!(a.round_trip.mean(), b.round_trip.mean());
        assert_eq!(a.cycles, b.cycles);
    }
}
