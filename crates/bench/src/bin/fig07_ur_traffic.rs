//! Figure 7: performance and network power with uniform-random traffic.
//!
//! (a) load-latency curves for Baseline, Center+B, Diagonal+B, Center+BL,
//!     Diagonal+BL;
//! (b) throughput improvement, average-latency reduction and zero-load
//!     latency reduction of all six HeteroNoC layouts over the baseline;
//! (c) power vs load for Baseline, Row2_5+BL, Center+BL, Diagonal+BL.

use heteronoc::noc::sim::UniformRandom;
use heteronoc::Layout;
use heteronoc_bench::{
    mean_unsaturated_latency_ns, mean_unsaturated_power_w, pct_gain, pct_reduction,
    saturation_throughput, sweep_layout, zero_load_latency_ns, LoadPoint, Report,
};

fn main() {
    let mut rep = Report::new("fig07_ur_traffic");
    // The paper sweeps 0.004 .. 0.076 packets/node/cycle (Fig. 7a).
    let rates: Vec<f64> = (1..=10).map(|i| 0.008 * i as f64).collect();

    rep.line("# Figure 7 — uniform random traffic, 8x8 mesh");
    rep.line(format!(
        "# measurement batch: {} packets/load point",
        heteronoc_bench::measure_packets()
    ));

    let layouts = Layout::all_seven();
    let mut results: Vec<(String, Vec<LoadPoint>)> = Vec::new();
    for layout in &layouts {
        let pts = sweep_layout(layout, &rates, 0xF1607, || Box::new(UniformRandom));
        results.push((layout.name().to_owned(), pts));
    }

    rep.line("");
    rep.line("## (a) Load-latency curves [ns]");
    let mut header = String::from("rate      ");
    for (name, _) in &results {
        header.push_str(&format!("{name:>12}"));
    }
    rep.line(header);
    for (i, &rate) in rates.iter().enumerate() {
        let mut row = format!("{rate:<10.3}");
        for (_, pts) in &results {
            let p = &pts[i];
            if p.saturated {
                row.push_str(&format!("{:>12}", "sat"));
            } else {
                row.push_str(&format!("{:>12.2}", p.latency_ns));
            }
        }
        rep.line(row);
    }

    let base = &results[0].1;
    let base_thr = saturation_throughput(base);
    let base_lat = mean_unsaturated_latency_ns(base);
    let base_zl = zero_load_latency_ns(base);
    let base_pow = mean_unsaturated_power_w(base);

    rep.line("");
    rep.line("## (b) Percentage over baseline design");
    rep.line(format!(
        "{:<14}{:>12}{:>14}{:>12}",
        "config", "throughput", "avg latency", "zero load"
    ));
    for (name, pts) in results.iter().skip(1) {
        rep.line(format!(
            "{:<14}{:>+11.1}%{:>+13.1}%{:>+11.1}%",
            name,
            pct_gain(base_thr, saturation_throughput(pts)),
            pct_reduction(base_lat, mean_unsaturated_latency_ns(pts)),
            pct_reduction(base_zl, zero_load_latency_ns(pts)),
        ));
    }

    rep.line("");
    rep.line("## (c) Power vs load [W]");
    let mut header = String::from("rate      ");
    for (name, _) in &results {
        header.push_str(&format!("{name:>12}"));
    }
    rep.line(header);
    for (i, &rate) in rates.iter().enumerate() {
        let mut row = format!("{rate:<10.3}");
        for (_, pts) in &results {
            let p = &pts[i];
            if p.saturated {
                row.push_str(&format!("{:>12}", "sat"));
            } else {
                row.push_str(&format!("{:>12.2}", p.power_w));
            }
        }
        rep.line(row);
    }

    // SVG renditions of (a) and (c).
    let dir = heteronoc_bench::results_dir();
    let mut lat_chart = heteronoc_bench::plot::LineChart::new(
        "Fig 7a — UR load-latency",
        "packets/node/cycle",
        "latency [ns]",
    );
    let mut pow_chart = heteronoc_bench::plot::LineChart::new(
        "Fig 7c — UR network power",
        "packets/node/cycle",
        "power [W]",
    );
    for (name, pts) in &results {
        lat_chart.series(
            name.clone(),
            pts.iter()
                .map(|p| (p.rate, if p.saturated { f64::NAN } else { p.latency_ns }))
                .collect(),
        );
        pow_chart.series(
            name.clone(),
            pts.iter()
                .map(|p| (p.rate, if p.saturated { f64::NAN } else { p.power_w }))
                .collect(),
        );
    }
    lat_chart.write(dir.join("fig07_latency.svg"));
    pow_chart.write(dir.join("fig07_power.svg"));
    rep.line("");
    rep.line("(SVG: results/fig07_latency.svg, results/fig07_power.svg)");

    rep.line("");
    rep.line("## Summary vs paper");
    rep.line(format!(
        "Diagonal+BL vs baseline: latency reduction {:+.1}% (paper ~+24%), throughput gain {:+.1}% (paper ~+22%), power reduction {:+.1}% (paper ~+28%)",
        pct_reduction(
            base_lat,
            mean_unsaturated_latency_ns(&results.iter().find(|(n, _)| n == "Diagonal+BL").unwrap().1)
        ),
        pct_gain(
            base_thr,
            saturation_throughput(&results.iter().find(|(n, _)| n == "Diagonal+BL").unwrap().1)
        ),
        pct_reduction(
            base_pow,
            mean_unsaturated_power_w(&results.iter().find(|(n, _)| n == "Diagonal+BL").unwrap().1)
        ),
    ));
}
