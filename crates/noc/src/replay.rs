//! Divergence-bisecting replay.
//!
//! When a resumed run does *not* reproduce the original — a checkpoint was
//! taken under a buggy codec, a traffic pattern forgot to save its state, a
//! nondeterministic code path slipped into the engine — the failure usually
//! surfaces thousands of cycles later as a mismatched fingerprint, which
//! says nothing about where determinism was lost. This module pinpoints the
//! exact cycle instead.
//!
//! [`ReplayDriver`] replays two trajectories of the same configured run —
//! each either fresh from cycle 0 or resumed from a [`Checkpoint`] — and
//! binary-searches the first cycle boundary at which their state
//! fingerprints ([`crate::network::Network::state_digest`]) differ. Because
//! the engine is a deterministic function of its complete state, equal
//! fingerprints at cycle *t* imply equal trajectories up to *t*; the
//! "diverged by cycle *t*" predicate is therefore monotone in *t* and the
//! bisection is sound. At the first diverging cycle the driver walks both
//! networks field by field ([`crate::network::Network::divergences`]) and
//! reports *which router, VC and field* first went wrong.
//!
//! Cost: `O(log T)` probe pairs, each a deterministic replay of at most
//! `T` cycles — no stored digest trajectories, no giant traces.

use crate::checkpoint::Checkpoint;
use crate::network::snapshot::Divergence;
use crate::network::Network;
use crate::sim::{SimError, SimParams, Stepper, Traffic};
use crate::types::Cycle;

/// Where a replay trajectory starts.
#[derive(Clone, Debug, Default)]
pub enum Trajectory {
    /// A fresh run from cycle 0.
    #[default]
    Fresh,
    /// Resume from a checkpoint (the trajectory is undefined before its
    /// capture cycle).
    Resumed(Checkpoint),
}

impl Trajectory {
    /// Earliest cycle the trajectory is defined at.
    pub fn start(&self) -> Cycle {
        match self {
            Trajectory::Fresh => 0,
            Trajectory::Resumed(c) => c.cycle,
        }
    }
}

/// Outcome of a divergence search: the first diverging cycle and the
/// field-level differences there.
#[derive(Clone, Debug)]
pub struct DivergenceReport {
    /// First cycle boundary at which the two trajectories' fingerprints
    /// differ.
    pub cycle: Cycle,
    /// Fingerprint of trajectory A at that cycle.
    pub digest_a: u64,
    /// Fingerprint of trajectory B at that cycle.
    pub digest_b: u64,
    /// Field-level differences at that cycle (trajectory A as "expected",
    /// B as "actual"), capped by the search's `max_fields`.
    pub fields: Vec<Divergence>,
    /// Probe pairs the bisection replayed.
    pub probes: u32,
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "first divergence at cycle {} (digests {:016x} vs {:016x}, {} probe pairs):",
            self.cycle, self.digest_a, self.digest_b, self.probes
        )?;
        if self.fields.is_empty() {
            writeln!(f, "  (no field-level differences captured)")?;
        }
        for d in &self.fields {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Binary search for the smallest `t` in `(lo, hi]` with `differs(t)`,
/// given a monotone predicate with `!differs(lo)` and `differs(hi)`.
fn bisect_first<E>(
    mut lo: Cycle,
    mut hi: Cycle,
    mut differs: impl FnMut(Cycle) -> Result<bool, E>,
) -> Result<Cycle, E> {
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if differs(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// Replays trajectories of one configured run and bisects their first
/// divergence.
///
/// The driver owns factories for the network and the traffic pattern so
/// every probe replays from pristine state; both trajectories always use
/// the same configuration and [`SimParams`] (checkpoints are additionally
/// validated against them via their header hashes).
pub struct ReplayDriver<'a> {
    params: SimParams,
    make_net: Box<dyn Fn() -> Network + 'a>,
    make_traffic: Box<dyn Fn() -> Box<dyn Traffic> + 'a>,
}

impl std::fmt::Debug for ReplayDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayDriver")
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl<'a> ReplayDriver<'a> {
    /// A driver replaying runs of `make_net()` under `params` with
    /// `make_traffic()` patterns.
    pub fn new(
        params: SimParams,
        make_net: impl Fn() -> Network + 'a,
        make_traffic: impl Fn() -> Box<dyn Traffic> + 'a,
    ) -> Self {
        Self {
            params,
            make_net: Box::new(make_net),
            make_traffic: Box::new(make_traffic),
        }
    }

    /// A stepper for `src`, positioned at the trajectory's start cycle.
    fn stepper(&self, src: &Trajectory) -> Result<Stepper, SimError> {
        let net = (self.make_net)();
        let traffic = (self.make_traffic)();
        match src {
            Trajectory::Fresh => Ok(Stepper::fresh(net, self.params, traffic)),
            Trajectory::Resumed(ckpt) => Stepper::resumed(net, self.params, traffic, ckpt),
        }
    }

    /// Replays `src` to cycle `t` and returns the fingerprint there.
    fn digest_at(&self, src: &Trajectory, t: Cycle) -> Result<u64, SimError> {
        let mut s = self.stepper(src)?;
        s.run_to(t)?;
        Ok(s.digest())
    }

    /// Finds the first cycle boundary in `[start, horizon]` at which
    /// trajectories `a` and `b` diverge, where `start` is the later of the
    /// two trajectories' start cycles. Returns `None` when the
    /// trajectories agree over the whole window (the resumption is
    /// faithful).
    ///
    /// `max_fields` caps the field-level differences collected at the
    /// diverging cycle.
    ///
    /// # Errors
    /// Propagates checkpoint-restore failures and any [`SimError`] the
    /// replays themselves hit.
    pub fn first_divergence(
        &self,
        a: &Trajectory,
        b: &Trajectory,
        horizon: Cycle,
        max_fields: usize,
    ) -> Result<Option<DivergenceReport>, SimError> {
        let start = a.start().max(b.start());
        let horizon = horizon.max(start);
        let mut probes: u32 = 0;
        let mut differs = |t: Cycle| -> Result<bool, SimError> {
            probes += 1;
            Ok(self.digest_at(a, t)? != self.digest_at(b, t)?)
        };

        let cycle = if differs(start)? {
            // The trajectories disagree at the common start already (e.g. a
            // perturbed or stale checkpoint): that *is* the first boundary.
            start
        } else if !differs(horizon)? {
            return Ok(None);
        } else {
            bisect_first(start, horizon, &mut differs)?
        };

        let mut sa = self.stepper(a)?;
        sa.run_to(cycle)?;
        let mut sb = self.stepper(b)?;
        sb.run_to(cycle)?;
        Ok(Some(DivergenceReport {
            cycle,
            digest_a: sa.digest(),
            digest_b: sb.digest(),
            fields: sa.network().divergences(sb.network(), max_fields),
            probes,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointError, Dec, Enc};
    use crate::config::NetworkConfig;
    use crate::packet::PacketClass;
    use crate::sim::{InjectionProcess, UniformRandom};
    use crate::types::{Bits, NodeId};

    fn params() -> SimParams {
        SimParams {
            injection_rate: crate::types::Rate::new(0.02),
            warmup_packets: 50,
            measure_packets: 400,
            max_cycles: 200_000,
            seed: 7,
            process: InjectionProcess::Bernoulli,
            watchdog: Some(100_000),
        }
    }

    fn driver<'a>(make_traffic: impl Fn() -> Box<dyn Traffic> + 'a) -> ReplayDriver<'a> {
        ReplayDriver::new(
            params(),
            || Network::new(NetworkConfig::paper_baseline()).unwrap(),
            make_traffic,
        )
    }

    #[test]
    fn bisect_finds_every_threshold() {
        for threshold in 1..=50u64 {
            let found = bisect_first(0, 50, |t| Ok::<_, ()>(t >= threshold)).unwrap();
            assert_eq!(found, threshold);
        }
    }

    #[test]
    fn faithful_resume_has_no_divergence() {
        let d = driver(|| Box::new(UniformRandom));
        let mut s = d.stepper(&Trajectory::Fresh).unwrap();
        s.run_to(120).unwrap();
        let ckpt = s.checkpoint();
        let report = d
            .first_divergence(&Trajectory::Fresh, &Trajectory::Resumed(ckpt), 1_000, 16)
            .unwrap();
        assert!(
            report.is_none(),
            "faithful resume must not diverge: {report:?}"
        );
    }

    #[test]
    fn perturbed_checkpoint_diverges_at_its_own_cycle() {
        let d = driver(|| Box::new(UniformRandom));
        // Build a perturbed fixture: the checkpointed run carries one extra
        // packet the reference run never saw.
        let mut net = Network::new(NetworkConfig::paper_baseline()).unwrap();
        net.enqueue(NodeId(0), NodeId(63), Bits(1024), PacketClass::Data, 0);
        let mut s = Stepper::fresh(net, params(), Box::new(UniformRandom));
        s.run_to(120).unwrap();
        let ckpt = s.checkpoint();

        let report = d
            .first_divergence(&Trajectory::Fresh, &Trajectory::Resumed(ckpt), 1_000, 16)
            .unwrap()
            .expect("perturbed fixture must diverge");
        assert_eq!(report.cycle, 120, "already wrong at the checkpoint cycle");
        assert_ne!(report.digest_a, report.digest_b);
        assert!(!report.fields.is_empty(), "fields must be named");
        let text = report.to_string();
        assert!(text.contains("first divergence at cycle 120"), "{text}");
    }

    /// A traffic pattern with internal state: sends every K-th packet to a
    /// hotspot node. The `faithful` flag controls whether that state is
    /// checkpointed — `false` models the real-world bug class this tool
    /// exists for (a pattern that forgot `save_state`).
    struct CountingHotspot {
        sent: u64,
        faithful: bool,
    }

    impl Traffic for CountingHotspot {
        fn destination(
            &mut self,
            src: NodeId,
            num_nodes: usize,
            rng: &mut rand::rngs::StdRng,
        ) -> NodeId {
            self.sent += 1;
            if self.sent.is_multiple_of(5) {
                NodeId(0)
            } else {
                UniformRandom.destination(src, num_nodes, rng)
            }
        }

        fn save_state(&self, e: &mut Enc) {
            if self.faithful {
                e.u64(self.sent);
            }
        }

        fn load_state(&mut self, d: &mut Dec) -> Result<(), CheckpointError> {
            if self.faithful {
                self.sent = d.u64()?;
            }
            Ok(())
        }
    }

    #[test]
    fn lost_traffic_state_is_bisected_to_a_cycle_after_the_checkpoint() {
        let mk = |faithful: bool| {
            move || -> Box<dyn Traffic> { Box::new(CountingHotspot { sent: 0, faithful }) }
        };

        // Faithful pattern: resume reproduces the run exactly.
        let d = driver(mk(true));
        let mut s = d.stepper(&Trajectory::Fresh).unwrap();
        s.run_to(100).unwrap();
        let good = s.checkpoint();
        assert!(d
            .first_divergence(&Trajectory::Fresh, &Trajectory::Resumed(good), 800, 16)
            .unwrap()
            .is_none());

        // Unfaithful pattern: the packet counter resets to 0 on resume, so
        // the resumed trajectory starts picking different destinations —
        // identical AT the checkpoint, provably diverging after it.
        let d = driver(mk(false));
        let mut s = d.stepper(&Trajectory::Fresh).unwrap();
        s.run_to(100).unwrap();
        let bad = s.checkpoint();
        let report = d
            .first_divergence(&Trajectory::Fresh, &Trajectory::Resumed(bad), 800, 16)
            .unwrap()
            .expect("lost pattern state must diverge");
        assert!(
            report.cycle > 100,
            "states agree at the checkpoint; divergence begins later (got {})",
            report.cycle
        );
        assert!(!report.fields.is_empty());
        assert!(report.probes >= 2, "bisection must actually probe");
    }

    #[test]
    fn two_checkpoints_of_the_same_run_agree() {
        let d = driver(|| Box::new(UniformRandom));
        let mut s = d.stepper(&Trajectory::Fresh).unwrap();
        s.run_to(60).unwrap();
        let early = s.checkpoint();
        s.run_to(180).unwrap();
        let late = s.checkpoint();
        let report = d
            .first_divergence(
                &Trajectory::Resumed(early),
                &Trajectory::Resumed(late),
                600,
                16,
            )
            .unwrap();
        assert!(report.is_none(), "{report:?}");
    }
}
