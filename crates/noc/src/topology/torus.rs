//! 2-D torus topology (edge-symmetric comparison network, paper §5.1.1).
//!
//! Identical to the mesh plus wrap-around channels in each row and column.
//! Wrap links are flagged so the routing layer can implement dateline
//! virtual-channel classes for deadlock freedom on the rings.

use crate::types::{Coord, RouterId};

use super::{GraphBuilder, TopologyGraph, TopologyKind};

/// Builds a `width x height` torus with one node per router.
///
/// Port order per router: `[local, N, E, S, W]` where the wrap channel of a
/// boundary router takes the place of its missing mesh direction, so every
/// router is a full 5-port router (the torus is edge symmetric).
///
/// # Panics
/// Panics if `width < 3` or `height < 3` (smaller rings would create
/// duplicate channels between the same router pair).
///
/// # Examples
/// ```
/// let g = heteronoc_noc::topology::torus::build(8, 8);
/// assert_eq!(g.num_links(), 256); // 2 * 2 * 64
/// ```
pub fn build(width: usize, height: usize) -> TopologyGraph {
    assert!(
        width >= 3 && height >= 3,
        "torus dimensions must be at least 3"
    );
    let coords: Vec<Coord> = (0..height)
        .flat_map(|y| (0..width).map(move |x| Coord::new(x, y)))
        .collect();
    let mut b = GraphBuilder::with_routers(coords);
    for r in 0..width * height {
        b.attach_node(RouterId(r));
    }
    for y in 0..height {
        for x in 0..width {
            let r = RouterId(y * width + x);
            // Each router owns its eastward and southward channel, so every
            // ring channel is created exactly once.
            let ex = (x + 1) % width;
            let east = RouterId(y * width + ex);
            b.connect(r, east, x + 1 == width);
            // South channel (wraps on the last row).
            let sy = (y + 1) % height;
            let south = RouterId(sy * width + x);
            if y + 1 < height {
                b.connect(r, south, false);
            } else {
                b.connect(r, south, true);
            }
        }
    }
    b.finish(TopologyKind::Torus { width, height })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    #[test]
    fn torus_is_edge_symmetric() {
        let g = build(8, 8);
        for r in 0..g.num_routers() {
            assert_eq!(
                g.router(RouterId(r)).ports.len(),
                5,
                "router {r} must have 5 ports"
            );
        }
    }

    #[test]
    fn link_count() {
        let g = build(8, 8);
        // Each router owns an E and an S channel: 2 channels * 64 routers
        // * 2 unidirectional links.
        assert_eq!(g.num_links(), 256);
    }

    #[test]
    fn wrap_links_flagged() {
        let g = build(4, 4);
        let wraps = g.links().iter().filter(|l| l.wrap).count();
        // 4 rows + 4 cols wrap channels, 2 unidirectional links each.
        assert_eq!(wraps, 16);
    }

    #[test]
    fn route_hops_uses_shortest_ring_path() {
        let g = build(8, 8);
        // node 0 (0,0) to node 7 (7,0): 1 hop around the wrap.
        assert_eq!(g.route_hops(NodeId(0), NodeId(7)), 1);
        // node 0 to node 63 (7,7): 1 + 1.
        assert_eq!(g.route_hops(NodeId(0), NodeId(63)), 2);
        // node 0 to (4,4): 4 + 4 (diameter).
        assert_eq!(g.route_hops(NodeId(0), NodeId(4 * 8 + 4)), 8);
    }

    #[test]
    fn wrap_neighbours_adjacent() {
        let g = build(4, 4);
        let a = g.router_at(Coord::new(0, 2)).unwrap();
        let b = g.router_at(Coord::new(3, 2)).unwrap();
        assert!(g.port_towards(a, b).is_some());
        assert!(g.port_towards(b, a).is_some());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn small_ring_panics() {
        let _ = build(2, 4);
    }
}
