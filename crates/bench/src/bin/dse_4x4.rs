//! §2 footnote 4: exhaustive design-space exploration on a 4x4 network.
//!
//! The paper enumerated every placement of big routers for three splits —
//! (12 small, 4 big): C(16,4)=1820, (10,6): 8008 and (8,8): 12870 raw
//! configurations — and extrapolated the winners to 8x8. We reduce each
//! space by D4 grid symmetry and score every canonical placement with a
//! short uniform-random simulation, reporting the best and worst layouts.

use heteronoc::dse;
use heteronoc::noc::config::{LinkWidths, NetworkConfig, RouterCfg};
use heteronoc::noc::network::Network;
use heteronoc::noc::routing::RoutingKind;
use heteronoc::noc::sim::{run_open_loop, InjectionProcess, SimParams, UniformRandom};
use heteronoc::noc::topology::TopologyKind;
use heteronoc::noc::types::Bits;
use heteronoc::Placement;
use heteronoc_bench::{full_scale, Report};

fn placement_config(p: &Placement) -> NetworkConfig {
    NetworkConfig {
        topology: TopologyKind::Mesh {
            width: p.width(),
            height: p.height(),
        },
        flit_width: Bits(128),
        routers: p
            .mask()
            .iter()
            .map(|&b| if b { RouterCfg::BIG } else { RouterCfg::SMALL })
            .collect(),
        link_widths: LinkWidths::ByBigRouters {
            big: p.mask().to_vec(),
            narrow: Bits(128),
            wide: Bits(256),
        },
        routing: RoutingKind::DimensionOrder,
        frequency_ghz: 2.07,
        escape_timeout: 16,
    }
}

fn score(p: &Placement, packets: u64) -> f64 {
    let net = Network::new(placement_config(p)).expect("valid placement config");
    let out = run_open_loop(
        net,
        &mut UniformRandom,
        SimParams {
            injection_rate: 0.05,
            warmup_packets: packets / 10,
            measure_packets: packets,
            max_cycles: 200_000,
            seed: 0xD5E,
            process: InjectionProcess::Bernoulli,
            watchdog: Some(100_000),
        },
    );
    if out.saturated {
        1e9
    } else {
        out.stats.latency.mean_total()
    }
}

fn describe(p: &Placement) -> String {
    let mut grid = String::new();
    for y in 0..p.height() {
        for x in 0..p.width() {
            grid.push(if p.is_big(heteronoc::noc::RouterId(y * p.width() + x)) {
                'B'
            } else {
                '.'
            });
        }
        grid.push(' ');
    }
    grid
}

fn main() {
    let mut rep = Report::new("dse_4x4");
    rep.line("# §2 footnote 4 — exhaustive 4x4 design-space exploration");
    rep.line("");
    rep.line("raw placement counts (paper):");
    for k in [4u64, 6, 8] {
        rep.line(format!("  C(16,{k}) = {}", dse::binomial(16, k)));
    }

    // Full scale sweeps all three splits; quick mode the 4-big split only.
    let splits: Vec<usize> = if full_scale() { vec![4, 6, 8] } else { vec![4] };
    let packets: u64 = if full_scale() { 4_000 } else { 1_200 };

    for k in splits {
        let canon = dse::enumerate_canonical(4, k);
        rep.line("");
        rep.line(format!(
            "## split: {} small / {k} big — {} raw placements, {} after D4 symmetry",
            16 - k,
            dse::binomial(16, k as u64),
            canon.len()
        ));
        let mut n = 0usize;
        let scored = dse::sweep(4, k, |p| {
            n += 1;
            if n.is_multiple_of(50) {
                eprintln!("  evaluated {n} placements");
            }
            score(p, packets)
        });
        rep.line("best five placements (mean latency in cycles; B = big router):");
        for s in scored.iter().take(5) {
            rep.line(format!("  {:8.2}  {}", s.score, describe(&s.placement)));
        }
        rep.line("worst three:");
        for s in scored.iter().rev().take(3) {
            rep.line(format!("  {:8.2}  {}", s.score, describe(&s.placement)));
        }
        // Where do the structured layouts rank?
        let diag = Placement::diagonals(4, 4);
        if k == 8 {
            let rank = scored
                .iter()
                .position(|s| s.placement == diag)
                .map(|i| i + 1);
            if let Some(r) = rank {
                rep.line(format!(
                    "diagonal placement ranks {r} of {} canonical layouts",
                    scored.len()
                ));
            }
        }
    }
}
