//! Figure 2: buffer utilization in non-mesh, non-edge-symmetric topologies
//! under uniform-random traffic — (a) a 4x4 concentrated mesh with
//! concentration 4, (b) a 64-node flattened butterfly (16 routers,
//! concentration 4). Both show the same centre-heavy non-uniformity as the
//! mesh, supporting the paper's claim that the artifact is generic to
//! non-edge-symmetric networks with deterministic X-Y routing.

use crate::{measure_packets, Report};
use heteronoc::noc::config::{NetworkConfig, RouterCfg};
use heteronoc::noc::network::Network;
use heteronoc::noc::sim::{SimParams, SimRun};
use heteronoc::noc::topology::TopologyKind;
use heteronoc::noc::types::{Bits, Rate};

fn run_one(kind: TopologyKind, rate: f64) -> heteronoc::noc::stats::NetStats {
    let cfg = NetworkConfig::homogeneous(kind, RouterCfg::BASELINE, Bits(192), 2.2);
    let net = Network::new(cfg).expect("valid");
    let out = SimRun::new(
        net,
        SimParams {
            injection_rate: Rate::new(rate),
            warmup_packets: 1_000,
            measure_packets: measure_packets(),
            max_cycles: 2_000_000,
            seed: 0xF1602,
            ..SimParams::default()
        },
    )
    .run()
    .expect("simulation run");
    out.stats
}

fn print_grid(rep: &mut Report, stats: &heteronoc::noc::stats::NetStats, w: usize, h: usize) {
    for y in 0..h {
        let row: Vec<String> = (0..w)
            .map(|x| format!("{:5.1}", 100.0 * stats.vc_utilization(y * w + x)))
            .collect();
        rep.line(row.join(" "));
    }
    let center: f64 = [(1usize, 1usize), (2, 1), (1, 2), (2, 2)]
        .iter()
        .map(|&(x, y)| stats.vc_utilization(y * w + x))
        .sum::<f64>()
        / 4.0;
    let corners: f64 = [(0usize, 0usize), (3, 0), (0, 3), (3, 3)]
        .iter()
        .map(|&(x, y)| stats.vc_utilization(y * w + x))
        .sum::<f64>()
        / 4.0;
    rep.line(format!(
        "center mean {:.1}%  corner mean {:.1}%  (paper: centre-heavy gradient)",
        100.0 * center,
        100.0 * corners
    ));
}

pub fn run() {
    let mut rep = Report::new("fig02_other_topologies");
    rep.line("# Figure 2 — buffer utilization in other topologies (UR, heat-map)");

    rep.line("");
    rep.line("## (a) Concentrated mesh 4x4, concentration 4 (64 nodes)");
    // Higher per-router load: 4 nodes inject per router.
    let stats = run_one(
        TopologyKind::CMesh {
            width: 4,
            height: 4,
            concentration: 4,
        },
        0.03,
    );
    print_grid(&mut rep, &stats, 4, 4);

    rep.line("");
    rep.line("## (b) Flattened butterfly 4x4 routers, concentration 4 (64 nodes)");
    let stats = run_one(
        TopologyKind::FlattenedButterfly {
            width: 4,
            height: 4,
            concentration: 4,
        },
        0.05,
    );
    print_grid(&mut rep, &stats, 4, 4);
}
