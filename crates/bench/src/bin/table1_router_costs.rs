//! Thin wrapper: the experiment lives in
//! `heteronoc_bench::experiments::table1_router_costs` so `run_all` can execute it
//! in-process on the sweep executor.

fn main() {
    heteronoc_bench::experiments::table1_router_costs::run();
}
