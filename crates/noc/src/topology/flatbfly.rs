//! 2-D flattened butterfly (Fig. 2b, after Kim/Dally/Abts ISCA'07).
//!
//! Routers form a `width x height` grid that is *fully connected within each
//! row and within each column*. With 16 routers (4x4) and concentration 4
//! this serves the paper's 64-node configuration; any destination is at most
//! two hops away (one X hop + one Y hop).

use crate::types::{Coord, RouterId};

use super::{GraphBuilder, TopologyGraph, TopologyKind};

/// Builds a `width x height` flattened butterfly with `concentration` nodes
/// per router.
///
/// Port order per router: `concentration` local ports, then the row
/// (X-dimension) express channels in increasing peer order of first
/// connection, then column channels. Channel creation order is
/// deterministic: rows first (all pairs, lexicographic), then columns.
///
/// # Panics
/// Panics if any dimension or the concentration is zero.
///
/// # Examples
/// ```
/// let g = heteronoc_noc::topology::flatbfly::build(4, 4, 4);
/// assert_eq!(g.num_routers(), 16);
/// assert_eq!(g.num_nodes(), 64);
/// // 4 locals + 3 row peers + 3 column peers.
/// use heteronoc_noc::types::RouterId;
/// assert_eq!(g.router(RouterId(0)).ports.len(), 10);
/// ```
pub fn build(width: usize, height: usize, concentration: usize) -> TopologyGraph {
    assert!(
        width > 0 && height > 0 && concentration > 0,
        "flattened butterfly dimensions and concentration must be non-zero"
    );
    let coords: Vec<Coord> = (0..height)
        .flat_map(|y| (0..width).map(move |x| Coord::new(x, y)))
        .collect();
    let mut b = GraphBuilder::with_routers(coords);
    for r in 0..width * height {
        for _ in 0..concentration {
            b.attach_node(RouterId(r));
        }
    }
    // Full row connectivity.
    for y in 0..height {
        for x0 in 0..width {
            for x1 in (x0 + 1)..width {
                b.connect(RouterId(y * width + x0), RouterId(y * width + x1), false);
            }
        }
    }
    // Full column connectivity.
    for x in 0..width {
        for y0 in 0..height {
            for y1 in (y0 + 1)..height {
                b.connect(RouterId(y0 * width + x), RouterId(y1 * width + x), false);
            }
        }
    }
    b.finish(TopologyKind::FlattenedButterfly {
        width,
        height,
        concentration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    #[test]
    fn paper_configuration() {
        let g = build(4, 4, 4);
        assert_eq!(g.num_routers(), 16);
        assert_eq!(g.num_nodes(), 64);
        for r in 0..16 {
            assert_eq!(g.router(RouterId(r)).ports.len(), 10);
        }
        // Channels: per row C(4,2)=6, 4 rows; same for columns; x2 direction.
        assert_eq!(g.num_links(), (6 * 4 + 6 * 4) * 2);
    }

    #[test]
    fn all_row_column_peers_adjacent() {
        let g = build(4, 4, 1);
        let a = g.router_at(Coord::new(0, 2)).unwrap();
        for x in 1..4 {
            let p = g.router_at(Coord::new(x, 2)).unwrap();
            assert!(g.port_towards(a, p).is_some(), "row peer x={x}");
        }
        for y in [0usize, 1, 3] {
            let p = g.router_at(Coord::new(0, y)).unwrap();
            assert!(g.port_towards(a, p).is_some(), "col peer y={y}");
        }
        // Diagonal peer is NOT adjacent.
        let d = g.router_at(Coord::new(1, 1)).unwrap();
        assert!(g.port_towards(a, d).is_none());
    }

    #[test]
    fn max_two_hops() {
        let g = build(4, 4, 4);
        for s in 0..64 {
            for d in 0..64 {
                assert!(g.route_hops(NodeId(s), NodeId(d)) <= 2);
            }
        }
    }
}
