//! Channel-dependency-graph construction and acyclicity proof.
//!
//! A *channel* is one virtual channel of one unidirectional link — the VC
//! buffer at the receiving router's input port. A flit occupying channel `a`
//! that must next acquire channel `b` induces the dependency `a -> b`; the
//! network is deadlock-free when every dependency cycle is broken (Dally &
//! Towles, ch. 14).
//!
//! The graph is built by walking the routing function over every
//! `(src, dst)` endpoint pair, translating each [`VcClass`] into the
//! concrete admissible VC indices of the downstream port. Two refinements
//! make the analysis exact for this codebase:
//!
//! * **Degenerate partitions are collapsed, not rejected.** When a port has
//!   too few VCs to realize a dateline/escape partition, the class collapses
//!   to the whole port — so a torus configured without dateline VCs produces
//!   the genuine ring cycle (named in the error) instead of a panic.
//! * **Escape relief (Duato).** Under [`EscapeModel::ReservedTop`], a
//!   blocked *expedited* table-routed packet may abandon its next table hop
//!   and divert onto the X-Y-routed escape VC (the engine does this after
//!   `escape_timeout` cycles). Dependencies such a packet creates are
//!   *relieved*: a cycle through them cannot hold because one of its
//!   packets always has the escape alternative. Deadlock freedom then
//!   requires only that the *hard* (relief-free) subgraph — ordinary X-Y
//!   traffic, the diversion edges and the escape subnetwork itself — is
//!   acyclic, which [`Cdg::check_acyclic`] proves.

use std::collections::{HashMap, HashSet};

use heteronoc_noc::routing::{RoutingKind, VcClass};
use heteronoc_noc::topology::TopologyGraph;
use heteronoc_noc::types::{LinkId, NodeId, RouterId};

use crate::error::{CdgChannel, VerifyError};

/// How reserved escape VCs are modelled during CDG construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EscapeModel {
    /// No escape reservation: every dependency is hard and the full CDG
    /// must be acyclic. Use this for dimension-order networks, or to ask
    /// "would this route table deadlock *without* its escape VCs?".
    None,
    /// The top VC of every port is a reserved X-Y escape VC and blocked
    /// expedited packets divert onto it (table-routing networks, §7).
    /// Table-induced dependencies are relieved; the escape subnetwork and
    /// the diversion edges are checked for acyclicity.
    ReservedTop,
}

/// The channel-dependency graph of one `(topology, routing, VCs)` triple.
#[derive(Clone, Debug)]
pub struct Cdg {
    /// Channel-index base per link (`channel = base[link] + vc`).
    base: Vec<usize>,
    /// `(src, dst)` routers of each link, for error naming.
    link_ends: Vec<(RouterId, RouterId)>,
    /// VC count of each link's receiving input port.
    link_vcs: Vec<usize>,
    /// Adjacency: `edges[a][b] == true` for hard edges, `false` for
    /// relieved (escape-divertable) edges. Hard wins when both occur.
    edges: Vec<HashMap<usize, bool>>,
    /// Channels belonging to a reserved escape VC.
    escape_channel: Vec<bool>,
    num_channels: usize,
}

impl Cdg {
    /// Builds the CDG for `routing` on `graph` with `vcs[r]` virtual
    /// channels per port at router `r`, under the given escape model.
    ///
    /// # Errors
    /// [`VerifyError::RouteDiverges`] when a routing walk fails to
    /// terminate, [`VerifyError::MissingEscapeVc`] when
    /// [`EscapeModel::ReservedTop`] is requested but a router cannot
    /// reserve an escape VC.
    ///
    /// # Panics
    /// Panics if `vcs.len()` does not match the router count or any entry
    /// is zero.
    pub fn build(
        graph: &TopologyGraph,
        routing: &RoutingKind,
        vcs: &[usize],
        escape: EscapeModel,
    ) -> Result<Self, VerifyError> {
        assert_eq!(vcs.len(), graph.num_routers(), "one VC count per router");
        assert!(
            vcs.iter().all(|&v| v > 0),
            "every port needs at least one VC"
        );
        if escape == EscapeModel::ReservedTop {
            if let Some(r) = vcs.iter().position(|&v| v < 2) {
                return Err(VerifyError::MissingEscapeVc {
                    router: RouterId(r),
                    vcs: vcs[r],
                });
            }
        }

        let mut base = Vec::with_capacity(graph.num_links());
        let mut link_ends = Vec::with_capacity(graph.num_links());
        let mut link_vcs = Vec::with_capacity(graph.num_links());
        let mut num_channels = 0;
        for l in graph.links() {
            base.push(num_channels);
            link_ends.push((l.src, l.dst));
            link_vcs.push(vcs[l.dst.index()]);
            num_channels += vcs[l.dst.index()];
        }

        let mut cdg = Cdg {
            base,
            link_ends,
            link_vcs,
            edges: vec![HashMap::new(); num_channels],
            escape_channel: vec![false; num_channels],
            num_channels,
        };
        if escape == EscapeModel::ReservedTop {
            for l in 0..cdg.link_vcs.len() {
                let v = cdg.link_vcs[l];
                cdg.escape_channel[cdg.base[l] + v - 1] = true;
            }
        }

        let mut builder = Builder {
            cdg: &mut cdg,
            graph,
            routing,
            escape,
            escape_walked: HashSet::new(),
        };
        let table_routed = routing.reserves_escape_vc();
        for s in 0..graph.num_nodes() {
            for d in 0..graph.num_nodes() {
                if s == d {
                    continue;
                }
                let (src, dst) = (NodeId(s), NodeId(d));
                builder.walk(src, dst, false)?;
                if table_routed {
                    // Expedited traffic takes the table path (escape-
                    // relieved under `ReservedTop`, hard under `None`).
                    builder.walk(src, dst, true)?;
                }
            }
        }
        Ok(cdg)
    }

    /// Number of VC-level channels.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Number of distinct dependencies (hard + relieved).
    pub fn num_dependencies(&self) -> usize {
        self.edges.iter().map(HashMap::len).sum()
    }

    /// Number of dependencies relieved by escape diversion.
    pub fn num_relieved(&self) -> usize {
        self.edges
            .iter()
            .flat_map(HashMap::values)
            .filter(|hard| !**hard)
            .count()
    }

    /// Proves the hard-dependency subgraph acyclic.
    ///
    /// # Errors
    /// [`VerifyError::CyclicEscape`] when a cycle lies entirely on reserved
    /// escape channels (the escape subnetwork cannot drain), otherwise
    /// [`VerifyError::CyclicDependency`]; both name the channels on the
    /// cycle in dependency order.
    pub fn check_acyclic(&self) -> Result<(), VerifyError> {
        // Deterministic adjacency order so the named cycle is stable.
        let adj: Vec<Vec<usize>> = self
            .edges
            .iter()
            .map(|m| {
                let mut hard: Vec<usize> =
                    m.iter().filter(|(_, &h)| h).map(|(&to, _)| to).collect();
                hard.sort_unstable();
                hard
            })
            .collect();

        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.num_channels];
        for start in 0..self.num_channels {
            if color[start] != WHITE {
                continue;
            }
            // Iterative DFS; the stack of `(channel, next-edge)` frames is
            // also the gray path used for cycle extraction.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = GRAY;
            while let Some(&(node, next)) = stack.last() {
                if let Some(&to) = adj[node].get(next) {
                    stack.last_mut().expect("non-empty").1 += 1;
                    match color[to] {
                        WHITE => {
                            color[to] = GRAY;
                            stack.push((to, 0));
                        }
                        GRAY => {
                            let from = stack
                                .iter()
                                .position(|&(c, _)| c == to)
                                .expect("gray channel is on the stack");
                            let cycle: Vec<usize> = stack[from..].iter().map(|&(c, _)| c).collect();
                            return Err(self.cycle_error(&cycle));
                        }
                        _ => {}
                    }
                } else {
                    color[node] = BLACK;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Resolves a channel index back to its named form.
    fn channel(&self, c: usize) -> CdgChannel {
        let link = match self.base.binary_search(&c) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (src, dst) = self.link_ends[link];
        CdgChannel {
            link: LinkId(link),
            src,
            dst,
            vc: c - self.base[link],
        }
    }

    fn cycle_error(&self, cycle: &[usize]) -> VerifyError {
        let named: Vec<CdgChannel> = cycle.iter().map(|&c| self.channel(c)).collect();
        if cycle.iter().all(|&c| self.escape_channel[c]) {
            VerifyError::CyclicEscape { cycle: named }
        } else {
            VerifyError::CyclicDependency { cycle: named }
        }
    }
}

/// Transient walk state; borrows the graph under construction.
struct Builder<'a> {
    cdg: &'a mut Cdg,
    graph: &'a TopologyGraph,
    routing: &'a RoutingKind,
    escape: EscapeModel,
    /// `(router, src, dst)` escape continuations already expanded.
    escape_walked: HashSet<(RouterId, NodeId, NodeId)>,
}

impl Builder<'_> {
    /// Admissible VC range of `class` at a port with `vcs` VCs. Unlike
    /// [`VcClass::range`] this never panics: partitions that do not fit
    /// collapse to the whole port, exposing the cycles the partition would
    /// have broken.
    fn class_range(&self, class: VcClass, vcs: usize) -> (usize, usize) {
        match class {
            VcClass::Any => (0, vcs),
            VcClass::Dateline0 if vcs >= 2 => (0, vcs / 2),
            VcClass::Dateline1 if vcs >= 2 => (vcs / 2, vcs),
            VcClass::NonEscape if vcs >= 2 && self.escape == EscapeModel::ReservedTop => {
                (0, vcs - 1)
            }
            VcClass::Escape if vcs >= 2 && self.escape == EscapeModel::ReservedTop => {
                (vcs - 1, vcs)
            }
            _ => (0, vcs),
        }
    }

    fn add_edges(
        &mut self,
        from: (usize, (usize, usize)),
        to: (usize, (usize, usize)),
        hard: bool,
    ) {
        let (fl, (flo, fhi)) = from;
        let (tl, (tlo, thi)) = to;
        for fv in flo..fhi {
            let a = self.cdg.base[fl] + fv;
            for tv in tlo..thi {
                let b = self.cdg.base[tl] + tv;
                let e = self.cdg.edges[a].entry(b).or_insert(hard);
                *e |= hard;
            }
        }
    }

    /// Walks `src -> dst` through the routing function, adding a dependency
    /// from each traversed channel to its successor.
    fn walk(&mut self, src: NodeId, dst: NodeId, expedited: bool) -> Result<(), VerifyError> {
        let bound = 2 * self.graph.num_routers() + 4;
        // Table dependencies are relieved by escape diversion; everything
        // else (plain X-Y traffic cannot divert) is hard.
        let relieved = expedited && self.escape == EscapeModel::ReservedTop;
        let mut cur = self.graph.attachment(src).router;
        let mut prev: Option<(usize, (usize, usize))> = None;
        let mut hops = 0;
        while let Some(choice) = self
            .routing
            .route(self.graph, cur, src, dst, expedited, false)
        {
            hops += 1;
            if hops > bound {
                return Err(VerifyError::RouteDiverges { src, dst, bound });
            }
            let link = self
                .graph
                .out_link(cur, choice.port)
                .expect("route() returns link ports");
            let range = self.class_range(choice.class, self.cdg.link_vcs[link.index()]);
            let here = (link.index(), range);
            if let Some(p) = prev {
                self.add_edges(p, here, !relieved);
            }
            cur = self.graph.links()[link.index()].dst;
            if relieved && cur != self.graph.attachment(dst).router {
                // A blocked head occupying `here` at `cur` may divert onto
                // the escape VC of the X-Y continuation; the diversion edge
                // and the escape subnetwork it enters must themselves drain,
                // so both are hard.
                self.walk_escape(here, cur, src, dst)?;
            }
            prev = Some(here);
        }
        Ok(())
    }

    /// Expands the escape (X-Y) continuation from router `at` towards
    /// `dst`, rooting it with a diversion edge out of `from`.
    fn walk_escape(
        &mut self,
        from: (usize, (usize, usize)),
        at: RouterId,
        src: NodeId,
        dst: NodeId,
    ) -> Result<(), VerifyError> {
        let bound = 2 * self.graph.num_routers() + 4;
        let Some(first) = self.routing.escape_route(self.graph, at, src, dst) else {
            return Ok(());
        };
        let link = self
            .graph
            .out_link(at, first.port)
            .expect("escape route returns link ports");
        let range = self.class_range(first.class, self.cdg.link_vcs[link.index()]);
        self.add_edges(from, (link.index(), range), true);
        if !self.escape_walked.insert((at, src, dst)) {
            return Ok(());
        }
        let mut prev = (link.index(), range);
        let mut cur = self.graph.links()[link.index()].dst;
        let mut hops = 0;
        while let Some(choice) = self.routing.route(self.graph, cur, src, dst, true, true) {
            hops += 1;
            if hops > bound {
                return Err(VerifyError::RouteDiverges { src, dst, bound });
            }
            let link = self
                .graph
                .out_link(cur, choice.port)
                .expect("escape route returns link ports");
            let range = self.class_range(choice.class, self.cdg.link_vcs[link.index()]);
            let here = (link.index(), range);
            self.add_edges(prev, here, true);
            cur = self.graph.links()[link.index()].dst;
            prev = here;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteronoc_noc::routing::RouteTable;
    use heteronoc_noc::topology::TopologyKind;
    use heteronoc_noc::types::RouterId;

    fn mesh(n: usize) -> TopologyGraph {
        TopologyKind::Mesh {
            width: n,
            height: n,
        }
        .build()
    }

    #[test]
    fn xy_mesh_is_acyclic() {
        let g = mesh(4);
        let cdg = Cdg::build(
            &g,
            &RoutingKind::DimensionOrder,
            &[3; 16],
            EscapeModel::None,
        )
        .unwrap();
        assert!(cdg.num_dependencies() > 0);
        assert_eq!(cdg.num_relieved(), 0);
        cdg.check_acyclic().unwrap();
    }

    #[test]
    fn dateline_torus_is_acyclic() {
        let g = TopologyKind::Torus {
            width: 4,
            height: 4,
        }
        .build();
        let cdg = Cdg::build(
            &g,
            &RoutingKind::DimensionOrder,
            &[2; 16],
            EscapeModel::None,
        )
        .unwrap();
        cdg.check_acyclic().unwrap();
    }

    #[test]
    fn torus_without_dateline_vcs_names_the_ring_cycle() {
        let g = TopologyKind::Torus {
            width: 4,
            height: 4,
        }
        .build();
        // One VC per port: the dateline classes collapse and the ring
        // dependency cycle must surface, channel-named.
        let cdg = Cdg::build(
            &g,
            &RoutingKind::DimensionOrder,
            &[1; 16],
            EscapeModel::None,
        )
        .unwrap();
        let err = cdg.check_acyclic().unwrap_err();
        match err {
            VerifyError::CyclicDependency { ref cycle } => {
                assert!(cycle.len() >= 3, "ring cycle has at least the ring length");
                // Consecutive channels must chain through shared routers.
                for w in cycle.windows(2) {
                    assert_eq!(w[0].dst, w[1].src, "cycle must chain: {err}");
                }
                assert_eq!(cycle.last().unwrap().dst, cycle[0].src, "cycle closes");
            }
            ref other => panic!("expected a named cycle, got {other:?}"),
        }
    }

    #[test]
    fn zigzag_table_with_escape_is_deadlock_free() {
        let g = mesh(4);
        let tbl = RouteTable::for_hubs(&g, &[RouterId(0), RouterId(15)]);
        let routing = RoutingKind::TableXy(tbl);
        let cdg = Cdg::build(&g, &routing, &[3; 16], EscapeModel::ReservedTop).unwrap();
        assert!(cdg.num_relieved() > 0, "table deps must be escape-relieved");
        cdg.check_acyclic().unwrap();
    }

    #[test]
    fn cyclic_route_table_without_escape_is_rejected() {
        let g = mesh(3);
        // Four L-shaped paths chasing each other around the centre:
        // r0->r2 via r1 (E,E then S? no: keep it on the outer ring).
        //   0 1 2
        //   3 4 5
        //   6 7 8
        let mut tbl = RouteTable::new();
        let p = |ids: &[usize]| ids.iter().map(|&i| RouterId(i)).collect::<Vec<_>>();
        tbl.insert(RouterId(0), RouterId(5), p(&[0, 1, 2, 5])); // E,E,S
        tbl.insert(RouterId(2), RouterId(7), p(&[2, 5, 8, 7])); // S,S,W
        tbl.insert(RouterId(8), RouterId(3), p(&[8, 7, 6, 3])); // W,W,N
        tbl.insert(RouterId(6), RouterId(1), p(&[6, 3, 0, 1])); // N,N,E
        let routing = RoutingKind::TableXy(tbl);
        // Without the escape reservation the four turns close a cycle.
        let cdg = Cdg::build(&g, &routing, &[2; 9], EscapeModel::None).unwrap();
        let err = cdg.check_acyclic().unwrap_err();
        let VerifyError::CyclicDependency { cycle } = &err else {
            panic!("expected CyclicDependency, got {err:?}");
        };
        assert!(cycle.len() >= 4, "turn cycle spans the four sides: {err}");
        // With the escape VC reserved, the same table verifies: the cycle
        // is entirely escape-relieved and the escape subnetwork is X-Y.
        let cdg = Cdg::build(&g, &routing, &[2; 9], EscapeModel::ReservedTop).unwrap();
        assert!(cdg.num_relieved() > 0);
        cdg.check_acyclic().unwrap();
    }

    #[test]
    fn table_on_torus_has_cyclic_escape() {
        let g = TopologyKind::Torus {
            width: 4,
            height: 4,
        }
        .build();
        let mut tbl = RouteTable::new();
        tbl.insert(
            RouterId(0),
            RouterId(2),
            vec![RouterId(0), RouterId(1), RouterId(2)],
        );
        let routing = RoutingKind::TableXy(tbl);
        // The single escape VC re-creates the ring cycle the datelines
        // otherwise break: escape diversion cannot guarantee progress.
        let cdg = Cdg::build(&g, &routing, &[3; 16], EscapeModel::ReservedTop).unwrap();
        let err = cdg.check_acyclic().unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::CyclicEscape { .. } | VerifyError::CyclicDependency { .. }
            ),
            "expected a named cycle, got {err:?}"
        );
    }

    #[test]
    fn reserved_top_requires_two_vcs() {
        let g = mesh(2);
        let err = Cdg::build(
            &g,
            &RoutingKind::DimensionOrder,
            &[2, 2, 1, 2],
            EscapeModel::ReservedTop,
        )
        .unwrap_err();
        assert_eq!(
            err,
            VerifyError::MissingEscapeVc {
                router: RouterId(2),
                vcs: 1
            }
        );
    }
}
