//! Synthetic traffic patterns (paper §4): uniform random, nearest
//! neighbour, transpose, bit-complement, plus the classic bit-reverse and a
//! hotspot pattern for wider coverage. All implement
//! [`heteronoc_noc::sim::Traffic`] so they plug into the open-loop driver.

use rand::rngs::StdRng;
use rand::Rng;

use heteronoc_noc::sim::Traffic;
use heteronoc_noc::types::NodeId;

pub use heteronoc_noc::sim::UniformRandom;

/// Nearest-neighbour traffic: each packet goes to a uniformly chosen mesh
/// neighbour of the source (paper Fig. 9). Nodes are laid out row-major on
/// a `width x height` grid.
#[derive(Clone, Copy, Debug)]
pub struct NearestNeighbor {
    /// Grid columns.
    pub width: usize,
    /// Grid rows.
    pub height: usize,
}

impl NearestNeighbor {
    /// Pattern for a `width x height` node grid.
    ///
    /// # Panics
    /// Panics if either dimension is < 2 (no neighbours otherwise).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
        Self { width, height }
    }
}

impl Traffic for NearestNeighbor {
    fn destination(&mut self, src: NodeId, num_nodes: usize, rng: &mut StdRng) -> NodeId {
        debug_assert_eq!(num_nodes, self.width * self.height);
        let x = src.index() % self.width;
        let y = src.index() / self.width;
        let mut opts = [(0usize, 0usize); 4];
        let mut n = 0;
        if y > 0 {
            opts[n] = (x, y - 1);
            n += 1;
        }
        if x + 1 < self.width {
            opts[n] = (x + 1, y);
            n += 1;
        }
        if y + 1 < self.height {
            opts[n] = (x, y + 1);
            n += 1;
        }
        if x > 0 {
            opts[n] = (x - 1, y);
            n += 1;
        }
        let (nx, ny) = opts[rng.random_range(0..n)];
        NodeId(ny * self.width + nx)
    }
}

/// Transpose traffic: node `(x, y)` sends to `(y, x)`. Diagonal nodes send
/// to themselves (their packets eject locally).
#[derive(Clone, Copy, Debug)]
pub struct Transpose {
    /// Grid side (the pattern is defined on a square grid).
    pub side: usize,
}

impl Transpose {
    /// Pattern for a `side x side` node grid.
    pub fn new(side: usize) -> Self {
        assert!(side > 0, "side must be non-zero");
        Self { side }
    }
}

impl Traffic for Transpose {
    fn destination(&mut self, src: NodeId, num_nodes: usize, _rng: &mut StdRng) -> NodeId {
        debug_assert_eq!(num_nodes, self.side * self.side);
        let x = src.index() % self.side;
        let y = src.index() / self.side;
        NodeId(x * self.side + y)
    }
}

/// Bit-complement traffic: node `i` sends to `!i & (N-1)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitComplement;

impl Traffic for BitComplement {
    fn destination(&mut self, src: NodeId, num_nodes: usize, _rng: &mut StdRng) -> NodeId {
        debug_assert!(num_nodes.is_power_of_two());
        NodeId(!src.index() & (num_nodes - 1))
    }
}

/// Bit-reverse traffic: the destination index is the source index with its
/// bits reversed (within `log2(N)` bits).
#[derive(Clone, Copy, Debug, Default)]
pub struct BitReverse;

impl Traffic for BitReverse {
    fn destination(&mut self, src: NodeId, num_nodes: usize, _rng: &mut StdRng) -> NodeId {
        debug_assert!(num_nodes.is_power_of_two());
        let bits = num_nodes.trailing_zeros();
        let mut s = src.index();
        let mut d = 0usize;
        for _ in 0..bits {
            d = (d << 1) | (s & 1);
            s >>= 1;
        }
        NodeId(d)
    }
}

/// Tornado traffic: node `(x, y)` sends halfway around each dimension:
/// `((x + ⌈w/2⌉ - 1) mod w, (y + ⌈h/2⌉ - 1) mod h)` — the classic
/// adversarial pattern for rings/tori (Dally & Towles §3.2).
#[derive(Clone, Copy, Debug)]
pub struct Tornado {
    /// Grid columns.
    pub width: usize,
    /// Grid rows.
    pub height: usize,
}

impl Tornado {
    /// Pattern for a `width x height` node grid.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 1 && height > 0, "grid too small for tornado");
        Self { width, height }
    }
}

impl Traffic for Tornado {
    fn destination(&mut self, src: NodeId, num_nodes: usize, _rng: &mut StdRng) -> NodeId {
        debug_assert_eq!(num_nodes, self.width * self.height);
        let x = src.index() % self.width;
        let y = src.index() / self.width;
        let dx = (x + self.width.div_ceil(2) - 1) % self.width;
        let dy = (y + self.height.div_ceil(2) - 1) % self.height;
        NodeId(dy * self.width + dx)
    }
}

/// Perfect-shuffle traffic: destination index is the source index rotated
/// left by one bit (within `log2(N)` bits).
#[derive(Clone, Copy, Debug, Default)]
pub struct Shuffle;

impl Traffic for Shuffle {
    fn destination(&mut self, src: NodeId, num_nodes: usize, _rng: &mut StdRng) -> NodeId {
        debug_assert!(num_nodes.is_power_of_two());
        let bits = num_nodes.trailing_zeros();
        let s = src.index();
        let rotated = ((s << 1) | (s >> (bits - 1))) & (num_nodes - 1);
        NodeId(rotated)
    }
}

/// Hotspot traffic: with probability `hot_fraction` the packet targets a
/// uniformly chosen hotspot node; otherwise any node (uniform random).
#[derive(Clone, Debug)]
pub struct Hotspot {
    /// Hotspot destinations.
    pub hotspots: Vec<NodeId>,
    /// Probability of targeting a hotspot.
    pub hot_fraction: f64,
}

impl Hotspot {
    /// Pattern with the given hotspot set and bias.
    ///
    /// # Panics
    /// Panics if `hotspots` is empty or `hot_fraction` is outside `[0, 1]`.
    pub fn new(hotspots: Vec<NodeId>, hot_fraction: f64) -> Self {
        assert!(!hotspots.is_empty(), "need at least one hotspot");
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot_fraction must be a probability"
        );
        Self {
            hotspots,
            hot_fraction,
        }
    }
}

impl Traffic for Hotspot {
    fn destination(&mut self, src: NodeId, num_nodes: usize, rng: &mut StdRng) -> NodeId {
        if rng.random::<f64>() < self.hot_fraction {
            self.hotspots[rng.random_range(0..self.hotspots.len())]
        } else {
            loop {
                let d = rng.random_range(0..num_nodes);
                if d != src.index() {
                    return NodeId(d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn nearest_neighbor_is_adjacent() {
        let mut t = NearestNeighbor::new(8, 8);
        let mut r = rng();
        for s in 0..64 {
            for _ in 0..20 {
                let d = t.destination(NodeId(s), 64, &mut r);
                let (sx, sy) = (s % 8, s / 8);
                let (dx, dy) = (d.index() % 8, d.index() / 8);
                assert_eq!(sx.abs_diff(dx) + sy.abs_diff(dy), 1, "{s}->{d}");
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let mut t = Transpose::new(8);
        let mut r = rng();
        for s in 0..64 {
            let d = t.destination(NodeId(s), 64, &mut r);
            let back = t.destination(d, 64, &mut r);
            assert_eq!(back, NodeId(s));
        }
        assert_eq!(t.destination(NodeId(0), 64, &mut r), NodeId(0));
        assert_eq!(t.destination(NodeId(1), 64, &mut r), NodeId(8));
    }

    #[test]
    fn bit_complement_pairs_opposite_corners() {
        let mut t = BitComplement;
        let mut r = rng();
        assert_eq!(t.destination(NodeId(0), 64, &mut r), NodeId(63));
        assert_eq!(t.destination(NodeId(63), 64, &mut r), NodeId(0));
        assert_eq!(t.destination(NodeId(21), 64, &mut r), NodeId(42));
    }

    #[test]
    fn bit_reverse_examples() {
        let mut t = BitReverse;
        let mut r = rng();
        // 64 nodes -> 6 bits: 0b000001 -> 0b100000.
        assert_eq!(t.destination(NodeId(1), 64, &mut r), NodeId(32));
        assert_eq!(t.destination(NodeId(32), 64, &mut r), NodeId(1));
        assert_eq!(t.destination(NodeId(0), 64, &mut r), NodeId(0));
    }

    #[test]
    fn hotspot_bias() {
        let mut t = Hotspot::new(vec![NodeId(5)], 0.5);
        let mut r = rng();
        let hits = (0..2000)
            .filter(|_| t.destination(NodeId(0), 64, &mut r) == NodeId(5))
            .count();
        // ~50% + 1/63 background; loose band.
        assert!((800..1300).contains(&hits), "hits={hits}");
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn nn_rejects_degenerate_grid() {
        let _ = NearestNeighbor::new(1, 8);
    }

    #[test]
    fn tornado_sends_halfway_around() {
        let mut t = Tornado::new(8, 8);
        let mut r = rng();
        // (0,0) -> (3,3): +ceil(8/2)-1 = +3 in each dimension.
        assert_eq!(t.destination(NodeId(0), 64, &mut r), NodeId(3 * 8 + 3));
        // Wraps: (6,7) -> (1,2).
        assert_eq!(
            t.destination(NodeId(7 * 8 + 6), 64, &mut r),
            NodeId(2 * 8 + 1)
        );
        // Tornado is a permutation: all destinations distinct.
        let dsts: std::collections::HashSet<_> = (0..64)
            .map(|s| t.destination(NodeId(s), 64, &mut r))
            .collect();
        assert_eq!(dsts.len(), 64);
    }

    #[test]
    fn shuffle_rotates_bits() {
        let mut t = Shuffle;
        let mut r = rng();
        // 6 bits: 0b000001 -> 0b000010; 0b100000 -> 0b000001.
        assert_eq!(t.destination(NodeId(1), 64, &mut r), NodeId(2));
        assert_eq!(t.destination(NodeId(32), 64, &mut r), NodeId(1));
        assert_eq!(t.destination(NodeId(0), 64, &mut r), NodeId(0));
        // Permutation property.
        let dsts: std::collections::HashSet<_> = (0..64)
            .map(|s| t.destination(NodeId(s), 64, &mut r))
            .collect();
        assert_eq!(dsts.len(), 64);
    }
}
