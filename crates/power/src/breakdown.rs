//! Component-wise power breakdown (buffers / crossbar / arbiters+logic /
//! links), the decomposition reported in Figs. 8(b) and 11(d).
//!
//! Shares are anchored at the paper's baseline router — buffers consume
//! about 35% of router power ([29, 30]), with the crossbar at 30%,
//! arbitration and control logic at 10% and link drivers at 25% — and scale
//! with the router organization: buffers with `v·w·depth`, crossbar with
//! `w²`, arbiters with `v`, links with `w`.

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::table1::BASELINE;

/// Power split across the four router components, in watts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Input buffer read/write and storage power.
    pub buffers: f64,
    /// Crossbar traversal power.
    pub crossbar: f64,
    /// Switch/VC arbitration and control logic.
    pub arbiters: f64,
    /// Link (channel driver) power.
    pub links: f64,
}

impl PowerBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.buffers + self.crossbar + self.arbiters + self.links
    }

    /// Normalized shares `[buffers, crossbar, arbiters, links]`
    /// (all zero when the total is zero).
    pub fn shares(&self) -> [f64; 4] {
        let t = self.total();
        if t <= 0.0 {
            return [0.0; 4];
        }
        [
            self.buffers / t,
            self.crossbar / t,
            self.arbiters / t,
            self.links / t,
        ]
    }

    /// Scales every component by `k`.
    pub fn scaled(&self, k: f64) -> Self {
        Self {
            buffers: self.buffers * k,
            crossbar: self.crossbar * k,
            arbiters: self.arbiters * k,
            links: self.links * k,
        }
    }
}

impl Add for PowerBreakdown {
    type Output = PowerBreakdown;
    fn add(self, o: PowerBreakdown) -> PowerBreakdown {
        PowerBreakdown {
            buffers: self.buffers + o.buffers,
            crossbar: self.crossbar + o.crossbar,
            arbiters: self.arbiters + o.arbiters,
            links: self.links + o.links,
        }
    }
}

impl AddAssign for PowerBreakdown {
    fn add_assign(&mut self, o: PowerBreakdown) {
        *self = *self + o;
    }
}

/// Baseline component shares at the calibration point
/// `[buffers, crossbar, arbiters+logic, links]`.
pub const BASELINE_SHARES: [f64; 4] = [0.35, 0.30, 0.10, 0.25];

/// Computes the normalized component shares of a router with `vcs` VCs,
/// `width_bits` datapath and `depth`-flit buffers, by scaling the baseline
/// anchor shares with the structure ratios and renormalizing.
///
/// # Examples
/// ```
/// use heteronoc_power::breakdown::router_shares;
/// let base = router_shares(3, 192, 5);
/// assert!((base[0] - 0.35).abs() < 1e-12);
/// // A big router is more buffer-dominated.
/// let big = router_shares(6, 256, 5);
/// assert!(big[0] > base[0]);
/// ```
pub fn router_shares(vcs: usize, width_bits: u32, depth: usize) -> [f64; 4] {
    let v = vcs as f64 / BASELINE.vcs as f64;
    let w = f64::from(width_bits) / f64::from(BASELINE.width_bits);
    let d = depth as f64 / BASELINE.buffer_depth as f64;
    let raw = [
        BASELINE_SHARES[0] * v * w * d, // buffers ~ v·w·depth
        BASELINE_SHARES[1] * w * w,     // crossbar ~ w²
        BASELINE_SHARES[2] * v,         // arbiters ~ v
        BASELINE_SHARES[3] * w,         // links ~ w
    ];
    let t: f64 = raw.iter().sum();
    raw.map(|x| x / t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_shares_are_the_anchor() {
        let s = router_shares(3, 192, 5);
        for (a, b) in s.iter().zip(BASELINE_SHARES.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn shares_sum_to_one() {
        for (v, w, d) in [(2usize, 128u32, 5usize), (6, 256, 5), (4, 192, 8)] {
            let s = router_shares(v, w, d);
            assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(s.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn big_router_is_buffer_heavy_small_router_is_link_heavy() {
        let small = router_shares(2, 128, 5);
        let big = router_shares(6, 256, 5);
        assert!(big[0] > 0.40, "big buffers share {}", big[0]);
        assert!(
            small[3] > BASELINE_SHARES[3],
            "small links share {}",
            small[3]
        );
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = PowerBreakdown {
            buffers: 1.0,
            crossbar: 2.0,
            arbiters: 0.5,
            links: 0.5,
        };
        let b = a.scaled(2.0);
        assert_eq!(b.total(), 8.0);
        let c = a + b;
        assert_eq!(c.total(), 12.0);
        let s = c.shares();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let mut d = PowerBreakdown::default();
        d += a;
        assert_eq!(d, a);
        assert_eq!(PowerBreakdown::default().shares(), [0.0; 4]);
    }
}
