//! JSONL progress streaming.
//!
//! Long-running jobs emit one [`Snapshot`] per reporting boundary as a
//! single JSON line to a [`ProgressSink`]. The stream is append-only and
//! self-describing: every line carries the schema version, a `kind`
//! discriminator (`"sim"`, `"sweep"`, `"campaign"`), and a monotonically
//! increasing per-job `seq`, so a dashboard (`heteronoc top`) can tail a
//! file shared by several jobs and render the latest state of each.
//!
//! Emission is strictly observational: sinks are plain buffered writers,
//! snapshot building draws no randomness, and a failed write surfaces as an
//! `io::Error` for the *caller* to handle (jobs log-and-continue — a full
//! disk must not kill a multi-hour campaign).

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::jsonw::{push_json_f64, push_json_str};
use crate::registry::Registry;

/// Version of the progress snapshot line format. Bump on breaking changes
/// to field names or semantics; consumers must check it.
///
/// * v1 — initial: `schema`, `kind`, `seq`, job-specific fields, optional
///   `counters` (registry object) and `deltas` (counter increments since
///   the previous snapshot of the same job).
pub const PROGRESS_SCHEMA: u32 = 1;

/// Builder for one progress line. Fields render in insertion order, after
/// the fixed `schema`/`kind`/`seq` header.
#[derive(Debug, Clone)]
pub struct Snapshot {
    body: String,
}

impl Snapshot {
    /// Start a snapshot of the given kind and sequence number.
    pub fn new(kind: &str, seq: u64) -> Self {
        let mut body = String::with_capacity(256);
        body.push_str("{\"schema\":");
        body.push_str(&PROGRESS_SCHEMA.to_string());
        body.push_str(",\"kind\":");
        push_json_str(&mut body, kind);
        body.push_str(",\"seq\":");
        body.push_str(&seq.to_string());
        Snapshot { body }
    }

    fn key(&mut self, key: &str) -> &mut String {
        self.body.push(',');
        push_json_str(&mut self.body, key);
        self.body.push(':');
        &mut self.body
    }

    /// Append an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key).push_str(&v.to_string());
        self
    }

    /// Append a float field (`null` when non-finite).
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        let body = self.key(key);
        push_json_f64(body, v);
        self
    }

    /// Append a string field.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        let body = self.key(key);
        push_json_str(body, v);
        self
    }

    /// Append a boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key).push_str(if v { "true" } else { "false" });
        self
    }

    /// Append the full registry as a nested object under `key`.
    pub fn registry(&mut self, key: &str, reg: &Registry) -> &mut Self {
        let body = self.key(key);
        reg.push_json(body);
        self
    }

    /// Append counter increments of `reg` since `baseline` as a nested
    /// object under `key` (omitted entirely when nothing grew).
    pub fn deltas(&mut self, key: &str, reg: &Registry, baseline: &Registry) -> &mut Self {
        let deltas = reg.counter_deltas(baseline);
        if deltas.is_empty() {
            return self;
        }
        let body = self.key(key);
        body.push('{');
        for (i, (path, d)) in deltas.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_json_str(body, path);
            body.push(':');
            body.push_str(&d.to_string());
        }
        body.push('}');
        self
    }

    /// Finish the line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = self.body.clone();
        out.push('}');
        out
    }
}

/// Where progress lines go: a file path, `-` for stdout, or `fd:N` for an
/// inherited file descriptor.
pub struct ProgressSink {
    out: BufWriter<Box<dyn Write + Send>>,
    spec: String,
}

impl fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressSink")
            .field("spec", &self.spec)
            .finish()
    }
}

impl ProgressSink {
    /// Open a sink from a `--progress` spec:
    ///
    /// * `-` — standard output;
    /// * `fd:N` — inherited file descriptor `N` (via `/dev/fd/N`);
    /// * anything else — a file path, created/truncated.
    pub fn open(spec: &str) -> io::Result<ProgressSink> {
        let out: Box<dyn Write + Send> = if spec == "-" {
            Box::new(io::stdout())
        } else if let Some(fd) = spec.strip_prefix("fd:") {
            let fd: u32 = fd.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("invalid file descriptor in progress spec '{spec}'"),
                )
            })?;
            Box::new(File::options().write(true).open(format!("/dev/fd/{fd}"))?)
        } else {
            Box::new(File::create(Path::new(spec))?)
        };
        Ok(ProgressSink {
            out: BufWriter::new(out),
            spec: spec.to_string(),
        })
    }

    /// A sink writing to an arbitrary writer (tests, in-memory buffers).
    pub fn from_writer(w: Box<dyn Write + Send>) -> ProgressSink {
        ProgressSink {
            out: BufWriter::new(w),
            spec: "<writer>".to_string(),
        }
    }

    /// The spec this sink was opened from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Write one snapshot line and flush, so `heteronoc top` sees complete
    /// lines immediately.
    pub fn emit(&mut self, snap: &Snapshot) -> io::Result<()> {
        self.out.write_all(snap.render().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn snapshot_renders_header_and_fields_in_order() {
        let mut s = Snapshot::new("sim", 3);
        s.field_u64("cycle", 500)
            .field_f64("eta_secs", 1.5)
            .field_str("phase", "measure")
            .field_bool("done", false);
        assert_eq!(
            s.render(),
            "{\"schema\":1,\"kind\":\"sim\",\"seq\":3,\"cycle\":500,\
             \"eta_secs\":1.5,\"phase\":\"measure\",\"done\":false}"
        );
    }

    #[test]
    fn deltas_field_omitted_when_empty() {
        let reg = Registry::new();
        let mut s = Snapshot::new("sweep", 0);
        s.deltas("deltas", &reg, &reg);
        assert_eq!(s.render(), "{\"schema\":1,\"kind\":\"sweep\",\"seq\":0}");

        let mut now = Registry::new();
        now.counter_add("done", 2);
        let mut s = Snapshot::new("sweep", 1);
        s.deltas("deltas", &now, &reg);
        assert!(s.render().ends_with(",\"deltas\":{\"done\":2}}"));
    }

    #[test]
    fn sink_emits_one_line_per_snapshot() {
        let buf = Shared::default();
        let mut sink = ProgressSink::from_writer(Box::new(buf.clone()));
        sink.emit(Snapshot::new("sim", 0).field_u64("cycle", 1))
            .unwrap();
        sink.emit(Snapshot::new("sim", 1).field_u64("cycle", 2))
            .unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[1].contains("\"cycle\":2"));
    }

    #[test]
    fn bad_fd_spec_is_rejected() {
        assert!(ProgressSink::open("fd:notanumber").is_err());
    }
}
