//! Thin wrapper: the experiment lives in
//! `heteronoc_bench::experiments::ablation_conditions` so `run_all` can execute it
//! in-process on the sweep executor.

fn main() {
    heteronoc_bench::experiments::ablation_conditions::run();
}
