//! Coherence and memory messages, and their encoding into network packets.
//!
//! All protocol traffic travels through the NoC as either 1-flit control
//! packets (requests, forwards, invalidations, acks) or cache-line data
//! packets (1024 bits, §4). A message is encoded losslessly into the
//! packet's `tag` so the simulator needs no side tables.

use serde::{Deserialize, Serialize};

use heteronoc_noc::types::Bits;

/// Size of a control/address packet (one flit in every configuration).
pub const CONTROL_BITS: Bits = Bits(64);

/// Size of a cache-line data packet.
pub const DATA_BITS: Bits = Bits(1024);

/// Virtual-network (message) class of a protocol message, ordered by
/// dependency depth for protocol-deadlock analysis.
///
/// The classic protocol-deadlock argument (and the one
/// `heteronoc-verify`'s `HN-E010` analysis machine-checks) partitions
/// messages into classes such that an endpoint *blocked* processing a
/// message of one class only ever waits on sends of a strictly deeper
/// class. The directory MESI protocol here needs three levels:
///
/// * **Request** — L1-originated transactions (`GetS`/`GetM`/`PutM`).
///   Processing one at the home may block until forwards/responses for
///   it complete.
/// * **Forward** — home-originated interventions and memory commands
///   (`FwdS`/`FwdM`/`Inv`/`MemRead`/`MemWrite`). Processing one at an
///   owner/sharer/memory controller may block until its response sends.
/// * **Response** — terminal messages (`InvAck`/`Data*`/`WbData`/
///   `MemData`). Consuming one never blocks on further network traffic:
///   the requester reserved its MSHR when the transaction began, and the
///   home's `MemData -> Data*` relay writes into space reserved at
///   `MemRead` issue, so same-class relays are non-blocking by
///   construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ProtocolClass {
    /// L1-originated requests.
    Request,
    /// Home-originated forwards/interventions and memory commands.
    Forward,
    /// Terminal responses (guaranteed sinkable).
    Response,
}

impl ProtocolClass {
    /// All classes, in dependency-depth order.
    pub const ALL: [ProtocolClass; 3] = [
        ProtocolClass::Request,
        ProtocolClass::Forward,
        ProtocolClass::Response,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolClass::Request => "Request",
            ProtocolClass::Forward => "Forward",
            ProtocolClass::Response => "Response",
        }
    }

    /// Position in [`ProtocolClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            ProtocolClass::Request => 0,
            ProtocolClass::Forward => 1,
            ProtocolClass::Response => 2,
        }
    }

    /// Classes an endpoint may *block awaiting* while it processes a
    /// message of this class (the class-dependency edges of the
    /// protocol-deadlock proof). Responses are terminal.
    pub fn blocks_on(self) -> &'static [ProtocolClass] {
        match self {
            ProtocolClass::Request => &[ProtocolClass::Forward, ProtocolClass::Response],
            ProtocolClass::Forward => &[ProtocolClass::Response],
            ProtocolClass::Response => &[],
        }
    }
}

/// Protocol message kinds (directory MESI, plus the memory interface).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum MsgKind {
    /// L1 read request to the home bank.
    GetS = 0,
    /// L1 write (ownership) request to the home bank.
    GetM = 1,
    /// Dirty eviction writeback from an L1 owner to the home bank.
    PutM = 2,
    /// Home asks the owner to downgrade to S and write back.
    FwdS = 3,
    /// Home asks the owner to invalidate and write back.
    FwdM = 4,
    /// Home invalidates a sharer.
    Inv = 5,
    /// Sharer acknowledges an invalidation to the home.
    InvAck = 6,
    /// Home grants shared data.
    DataS = 7,
    /// Home grants exclusive (clean) data — MESI E state.
    DataE = 8,
    /// Home grants modifiable data.
    DataM = 9,
    /// Owner writes data back to the home in response to a forward.
    WbData = 10,
    /// Home requests a line from a memory controller.
    MemRead = 11,
    /// Home writes an evicted dirty line to memory (fire and forget).
    MemWrite = 12,
    /// Memory controller returns a line to the home.
    MemData = 13,
}

impl MsgKind {
    /// True for messages that carry a full cache line.
    pub fn is_data(self) -> bool {
        matches!(
            self,
            MsgKind::PutM
                | MsgKind::DataS
                | MsgKind::DataE
                | MsgKind::DataM
                | MsgKind::WbData
                | MsgKind::MemWrite
                | MsgKind::MemData
        )
    }

    /// The message class this kind travels in (see [`ProtocolClass`]).
    pub fn protocol_class(self) -> ProtocolClass {
        match self {
            MsgKind::GetS | MsgKind::GetM | MsgKind::PutM => ProtocolClass::Request,
            MsgKind::FwdS | MsgKind::FwdM | MsgKind::Inv | MsgKind::MemRead | MsgKind::MemWrite => {
                ProtocolClass::Forward
            }
            MsgKind::InvAck
            | MsgKind::DataS
            | MsgKind::DataE
            | MsgKind::DataM
            | MsgKind::WbData
            | MsgKind::MemData => ProtocolClass::Response,
        }
    }

    /// Packet payload size for this message.
    pub fn packet_bits(self) -> Bits {
        if self.is_data() {
            DATA_BITS
        } else {
            CONTROL_BITS
        }
    }

    fn from_u8(v: u8) -> MsgKind {
        match v {
            0 => MsgKind::GetS,
            1 => MsgKind::GetM,
            2 => MsgKind::PutM,
            3 => MsgKind::FwdS,
            4 => MsgKind::FwdM,
            5 => MsgKind::Inv,
            6 => MsgKind::InvAck,
            7 => MsgKind::DataS,
            8 => MsgKind::DataE,
            9 => MsgKind::DataM,
            10 => MsgKind::WbData,
            11 => MsgKind::MemRead,
            12 => MsgKind::MemWrite,
            13 => MsgKind::MemData,
            _ => panic!("invalid message kind {v}"),
        }
    }
}

/// A protocol message.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Msg {
    /// Message kind.
    pub kind: MsgKind,
    /// Cache-block number (byte address / block size).
    pub block: u64,
    /// The core/node on whose behalf the transaction runs (the original
    /// requester), used to route the eventual data reply.
    pub requester: u16,
    /// True when the transaction was serviced by a memory controller
    /// (set on data replies; used for round-trip statistics, Fig. 13).
    pub from_memory: bool,
}

impl Msg {
    /// Creates a message.
    pub fn new(kind: MsgKind, block: u64, requester: usize) -> Msg {
        Msg {
            kind,
            block,
            requester: requester as u16,
            from_memory: false,
        }
    }

    /// Marks the transaction as memory-serviced.
    pub fn with_memory_flag(mut self, from_memory: bool) -> Msg {
        self.from_memory = from_memory;
        self
    }

    /// Encodes into a packet tag: `kind(4) | requester(12) | block(47) |
    /// from_memory(1)`.
    ///
    /// # Panics
    /// Panics if the block number exceeds 47 bits or the requester 12 bits.
    pub fn encode(self) -> u64 {
        assert!(self.block < (1 << 47), "block number too large");
        assert!(self.requester < (1 << 12), "requester id too large");
        (self.kind as u64)
            | (u64::from(self.requester) << 4)
            | (self.block << 16)
            | (u64::from(self.from_memory) << 63)
    }

    /// Decodes a packet tag produced by [`Msg::encode`].
    pub fn decode(tag: u64) -> Msg {
        Msg {
            kind: MsgKind::from_u8((tag & 0xF) as u8),
            requester: ((tag >> 4) & 0xFFF) as u16,
            block: (tag >> 16) & ((1 << 47) - 1),
            from_memory: tag >> 63 == 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for k in 0..14u8 {
            let kind = MsgKind::from_u8(k);
            let m = Msg::new(kind, 0x12_3456_789A, 1023).with_memory_flag(k % 2 == 0);
            let back = Msg::decode(m.encode());
            assert_eq!(back, m, "{kind:?}");
        }
    }

    #[test]
    fn data_sizes() {
        assert_eq!(MsgKind::GetS.packet_bits(), Bits(64));
        assert_eq!(MsgKind::DataM.packet_bits(), Bits(1024));
        assert!(MsgKind::MemData.is_data());
        assert!(!MsgKind::InvAck.is_data());
        // 1-flit control in both flit widths (64 <= 128 <= 192).
        assert_eq!(CONTROL_BITS.flits(Bits(192)), 1);
        assert_eq!(CONTROL_BITS.flits(Bits(128)), 1);
        // Data: 6 flits at 192b, 8 at 128b (§4).
        assert_eq!(DATA_BITS.flits(Bits(192)), 6);
        assert_eq!(DATA_BITS.flits(Bits(128)), 8);
    }

    #[test]
    #[should_panic(expected = "block number too large")]
    fn encode_rejects_huge_blocks() {
        let _ = Msg::new(MsgKind::GetS, 1 << 47, 0).encode();
    }

    #[test]
    fn protocol_classes_form_a_dag() {
        // Every kind has a class; blocking edges go strictly deeper, so the
        // class-dependency graph is acyclic by construction.
        for k in 0..14u8 {
            let class = MsgKind::from_u8(k).protocol_class();
            for dep in class.blocks_on() {
                assert!(
                    dep.index() > class.index(),
                    "{} must only block on deeper classes, not {}",
                    class.name(),
                    dep.name()
                );
            }
        }
        // The deepest class is terminal: responses always drain.
        assert!(ProtocolClass::Response.blocks_on().is_empty());
        // Spot-check the MESI mapping.
        assert_eq!(MsgKind::GetM.protocol_class(), ProtocolClass::Request);
        assert_eq!(MsgKind::MemRead.protocol_class(), ProtocolClass::Forward);
        assert_eq!(MsgKind::WbData.protocol_class(), ProtocolClass::Response);
    }
}
