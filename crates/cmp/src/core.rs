//! Trace-driven core models.
//!
//! The paper's CPU model (§5.2, Table 2): a two-way out-of-order core with a
//! 64-entry instruction window, fetch/execute/commit width of 3 with at most
//! one memory operation per cycle, replaying Simics-style traces of memory
//! operations separated by non-memory instruction gaps. The asymmetric-CMP
//! study (§7) adds single-issue in-order small cores.
//!
//! The model is a standard trace-replay approximation: instructions enter a
//! reorder window with a completion time (now for non-memory work, the
//! data-return time for memory operations) and commit in order at the
//! commit width. Window-full or MSHR-full stalls fetch, exposing memory
//! latency exactly to the extent the window cannot hide it.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use heteronoc_traffic::trace::{TraceRecord, TraceSource};

/// Cycle count type (core clock domain).
pub type Cycle = u64;

/// Identifies an outstanding L1 transaction a core instruction waits on.
pub type TxnId = u64;

/// Core microarchitecture parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreParams {
    /// Reorder-window entries (in-flight instructions).
    pub window: usize,
    /// Instructions fetched/committed per cycle.
    pub width: u32,
    /// Memory operations issued per cycle.
    pub mem_per_cycle: u32,
}

impl CoreParams {
    /// The paper's large out-of-order core: 64-entry window, width 3,
    /// 1 memory op/cycle.
    pub const OUT_OF_ORDER: CoreParams = CoreParams {
        window: 64,
        width: 3,
        mem_per_cycle: 1,
    };

    /// The §7 small core: single-issue, in-order (window 2 allows the
    /// 2-cycle L1 hit to pipeline slightly; misses are fully exposed).
    pub const IN_ORDER: CoreParams = CoreParams {
        window: 2,
        width: 1,
        mem_per_cycle: 1,
    };
}

/// What a core asks its L1 to do this cycle.
#[derive(Clone, Copy, Debug)]
pub struct MemIssue {
    /// The trace record being executed.
    pub record: TraceRecord,
}

/// The L1's answer to a [`MemIssue`].
#[derive(Clone, Copy, Debug)]
pub enum MemResult {
    /// Hit: the instruction completes at the given cycle.
    CompleteAt(Cycle),
    /// Miss: the instruction completes when the transaction resolves.
    Pending(TxnId),
    /// Structural stall (MSHRs full): retry next cycle.
    Retry,
}

#[derive(Clone, Copy, Debug)]
enum RobEntry {
    Done(Cycle),
    Waiting(TxnId),
}

/// A trace-driven core.
pub struct Core {
    params: CoreParams,
    trace: Box<dyn TraceSource + Send>,
    rob: VecDeque<RobEntry>,
    gap_left: u32,
    pending_mem: Option<TraceRecord>,
    committed: u64,
    trace_done: bool,
    first_commit: Option<Cycle>,
    last_commit: Cycle,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("params", &self.params)
            .field("committed", &self.committed)
            .field("rob", &self.rob.len())
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core replaying `trace`.
    pub fn new(params: CoreParams, trace: Box<dyn TraceSource + Send>) -> Core {
        Core {
            params,
            trace,
            rob: VecDeque::new(),
            gap_left: 0,
            pending_mem: None,
            committed: 0,
            trace_done: false,
            first_commit: None,
            last_commit: 0,
        }
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// True when the trace is exhausted and every instruction committed.
    pub fn finished(&self) -> bool {
        self.trace_done && self.rob.is_empty() && self.pending_mem.is_none() && self.gap_left == 0
    }

    /// IPC over the core's active lifetime (first to last commit).
    pub fn ipc(&self) -> f64 {
        match self.first_commit {
            Some(first) if self.last_commit > first => {
                self.committed as f64 / (self.last_commit - first) as f64
            }
            _ => 0.0,
        }
    }

    /// Advances one core cycle. `issue_mem` is called for each memory
    /// operation the core issues this cycle (at most
    /// [`CoreParams::mem_per_cycle`]); `txn_done` reports whether an L1
    /// transaction has resolved and at which cycle.
    pub fn tick<FIss, FDone>(&mut self, now: Cycle, mut issue_mem: FIss, txn_done: FDone)
    where
        FIss: FnMut(MemIssue) -> MemResult,
        FDone: Fn(TxnId) -> Option<Cycle>,
    {
        // Commit in order.
        let mut committed = 0;
        while committed < self.params.width {
            match self.rob.front() {
                Some(RobEntry::Done(c)) if *c <= now => {
                    self.rob.pop_front();
                    self.committed += 1;
                    committed += 1;
                    self.first_commit.get_or_insert(now);
                    self.last_commit = now;
                }
                Some(RobEntry::Waiting(t)) => {
                    if let Some(c) = txn_done(*t) {
                        if c <= now {
                            self.rob.pop_front();
                            self.committed += 1;
                            committed += 1;
                            self.first_commit.get_or_insert(now);
                            self.last_commit = now;
                            continue;
                        }
                    }
                    break;
                }
                _ => break,
            }
        }

        // Fetch/issue up to `width`, at most `mem_per_cycle` memory ops.
        let mut fetched = 0;
        let mut mem_issued = 0;
        while fetched < self.params.width && self.rob.len() < self.params.window {
            if self.gap_left > 0 {
                self.gap_left -= 1;
                self.rob.push_back(RobEntry::Done(now + 1));
                fetched += 1;
                continue;
            }
            if self.pending_mem.is_none() {
                match self.trace.next_record() {
                    Some(rec) => {
                        self.gap_left = rec.gap;
                        self.pending_mem = Some(rec);
                        if rec.gap > 0 {
                            continue; // start consuming the gap
                        }
                    }
                    None => {
                        self.trace_done = true;
                        break;
                    }
                }
            }
            // A memory op is next.
            if mem_issued >= self.params.mem_per_cycle {
                break;
            }
            let rec = self.pending_mem.expect("pending memory op");
            match issue_mem(MemIssue { record: rec }) {
                MemResult::CompleteAt(c) => {
                    self.rob.push_back(RobEntry::Done(c));
                    self.pending_mem = None;
                    fetched += 1;
                    mem_issued += 1;
                }
                MemResult::Pending(t) => {
                    self.rob.push_back(RobEntry::Waiting(t));
                    self.pending_mem = None;
                    fetched += 1;
                    mem_issued += 1;
                }
                MemResult::Retry => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteronoc_traffic::trace::{MemOp, VecTrace};

    fn trace(records: Vec<(u32, u64)>) -> Box<dyn TraceSource + Send> {
        Box::new(VecTrace::new(
            records
                .into_iter()
                .map(|(gap, addr)| TraceRecord {
                    gap,
                    op: MemOp::Load,
                    addr,
                })
                .collect(),
        ))
    }

    fn run_all_hit(params: CoreParams, records: Vec<(u32, u64)>, max: u64) -> (u64, u64) {
        let mut core = Core::new(params, trace(records));
        let mut now = 0;
        while !core.finished() {
            core.tick(now, |_| MemResult::CompleteAt(now + 2), |_| None);
            now += 1;
            assert!(now < max, "core did not finish");
        }
        (core.committed(), now)
    }

    #[test]
    fn ooo_core_approaches_width_ipc_on_hits() {
        // 100 records of 9 gap + 1 mem = 1000 instructions.
        let recs = (0..100).map(|i| (9u32, i * 128)).collect();
        let (committed, cycles) = run_all_hit(CoreParams::OUT_OF_ORDER, recs, 10_000);
        assert_eq!(committed, 1000);
        let ipc = committed as f64 / cycles as f64;
        // Width 3 but only 1 mem/cycle with 10% memory: cap ~3.
        assert!(ipc > 2.0, "ipc {ipc}");
    }

    #[test]
    fn in_order_core_is_scalar() {
        let recs = (0..50).map(|i| (4u32, i * 128)).collect();
        let (committed, cycles) = run_all_hit(CoreParams::IN_ORDER, recs, 10_000);
        assert_eq!(committed, 250);
        let ipc = committed as f64 / cycles as f64;
        assert!(ipc <= 1.01, "in-order ipc {ipc} must be <= 1");
        assert!(ipc > 0.5);
    }

    #[test]
    fn ooo_hides_miss_latency_within_window() {
        // One miss of 50 cycles among plenty of independent work.
        let mut recs = vec![(0u32, 0)];
        recs.extend((1..40).map(|i| (10u32, i * 128)));
        let mut core = Core::new(CoreParams::OUT_OF_ORDER, trace(recs));
        let mut now = 0;
        let miss_done = 52u64;
        while !core.finished() && now < 10_000 {
            core.tick(
                now,
                |iss| {
                    if iss.record.addr == 0 {
                        MemResult::Pending(7)
                    } else {
                        MemResult::CompleteAt(now + 2)
                    }
                },
                |t| if t == 7 { Some(miss_done) } else { None },
            );
            now += 1;
        }
        assert!(core.finished());
        // 40 records * ~11 instrs = ~430 instructions; the 52-cycle miss
        // overlaps fetch of the following window.
        let ipc = core.ipc();
        assert!(ipc > 1.5, "window must hide most of the miss: ipc {ipc}");
    }

    #[test]
    fn in_order_core_exposes_miss_latency() {
        let mut recs = vec![(0u32, 0)];
        recs.extend((1..10).map(|i| (0u32, i * 128)));
        let run = |params: CoreParams| {
            let mut core = Core::new(params, trace(recs.clone()));
            let mut now = 0;
            while !core.finished() && now < 10_000 {
                core.tick(
                    now,
                    |iss| {
                        if iss.record.addr == 0 {
                            MemResult::Pending(1)
                        } else {
                            MemResult::CompleteAt(now + 2)
                        }
                    },
                    |t| if t == 1 { Some(200) } else { None },
                );
                now += 1;
            }
            now
        };
        let in_order = run(CoreParams::IN_ORDER);
        let ooo = run(CoreParams::OUT_OF_ORDER);
        assert!(
            in_order > ooo,
            "in-order ({in_order}) must be slower than OoO ({ooo}) under a long miss"
        );
        assert!(in_order >= 200, "miss fully exposed in order");
    }

    #[test]
    fn retry_stalls_without_losing_the_op() {
        let recs = vec![(0u32, 0), (0, 128)];
        let mut core = Core::new(CoreParams::OUT_OF_ORDER, trace(recs));
        let mut now = 0;
        let mut attempts = 0;
        while !core.finished() && now < 100 {
            core.tick(
                now,
                |_| {
                    attempts += 1;
                    if attempts <= 3 {
                        MemResult::Retry
                    } else {
                        MemResult::CompleteAt(now + 2)
                    }
                },
                |_| None,
            );
            now += 1;
        }
        assert!(core.finished());
        assert_eq!(core.committed(), 2);
        assert!(attempts >= 5, "retries plus two successes");
    }

    #[test]
    fn mshr_width_limits_memory_issue_rate() {
        // All-memory trace: at most 1 mem op per cycle regardless of width.
        let recs: Vec<(u32, u64)> = (0..30).map(|i| (0u32, i * 128)).collect();
        let (committed, cycles) = run_all_hit(CoreParams::OUT_OF_ORDER, recs, 1_000);
        assert_eq!(committed, 30);
        assert!(cycles >= 30, "1 mem/cycle floor: {cycles}");
    }
}
