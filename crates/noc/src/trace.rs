//! Flit-level event tracing.
//!
//! A [`TraceSink`] installed on a [`crate::network::Network`] receives one
//! typed [`TraceEvent`] per flit-lifecycle step — injection, buffer
//! write/read, VC allocation, switch-allocation grant, link traversal,
//! ejection, retransmission and fault — stamped with the cycle and the
//! router/link coordinates where it happened. With no sink installed the
//! engine's hot path contains a single `Option::is_some()` branch per
//! potential event and builds no event values at all, so fault-free golden
//! fingerprints (and wall time) are unaffected.
//!
//! Two serializing sinks ship with the crate:
//!
//! * [`JsonlSink`] — one compact JSON object per line, a fixed field order
//!   per event kind, fully deterministic byte-for-byte per (config, seed).
//! * [`ChromeTraceSink`] — the Chrome `trace_event` array format, loadable
//!   directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! [`SharedBuffer`] is a small `Arc<Mutex<Vec<u8>>>` writer so callers can
//! recover a trace after [`crate::sim::SimRun::run`] has consumed the
//! network that owned the sink.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::types::{Cycle, LinkId, NodeId, PacketId, PortId, RouterId, VcId};

/// The unit a fault event names.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultUnit {
    /// A flit was corrupted in flight on `link` (CRC detected; NACKed).
    Corrupt {
        /// Link the corrupted flit was traversing.
        link: LinkId,
    },
    /// A hard fault killed one direction of a channel.
    LinkDead {
        /// The dead link.
        link: LinkId,
    },
    /// A hard fault killed a whole router.
    RouterDead {
        /// The dead router.
        router: RouterId,
    },
}

/// One flit-lifecycle event, stamped with the cycle it happened on.
///
/// Events are emitted in nondecreasing cycle order; within a cycle the
/// order follows the engine's phase order (event delivery, injection, RC/VA,
/// SA/ST) and is deterministic per (config, seed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A packet's head flit left its source queue and entered the network.
    Inject {
        /// Cycle of the event.
        cycle: Cycle,
        /// Injecting endpoint.
        node: NodeId,
        /// The packet.
        packet: PacketId,
        /// Total flits in the packet.
        flits: u32,
    },
    /// A flit was written into an input buffer (BW stage).
    BufferWrite {
        /// Cycle of the event.
        cycle: Cycle,
        /// Receiving router.
        router: RouterId,
        /// Input port written.
        port: PortId,
        /// Virtual channel written.
        vc: VcId,
        /// Owning packet.
        packet: PacketId,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// An output virtual channel was allocated to a packet (VA stage).
    VcAlloc {
        /// Cycle of the event.
        cycle: Cycle,
        /// Router granting the allocation.
        router: RouterId,
        /// Input port holding the requesting head flit.
        in_port: PortId,
        /// Input virtual channel of the requester.
        in_vc: VcId,
        /// Output port allocated.
        out_port: PortId,
        /// Output virtual channel allocated.
        out_vc: VcId,
        /// Owning packet.
        packet: PacketId,
    },
    /// A flit won switch allocation (SA stage).
    SaGrant {
        /// Cycle of the event.
        cycle: Cycle,
        /// Router granting the crossbar slot.
        router: RouterId,
        /// Input port of the winning flit.
        in_port: PortId,
        /// Input virtual channel of the winning flit.
        in_vc: VcId,
        /// Output port won.
        out_port: PortId,
        /// Owning packet.
        packet: PacketId,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A flit was read out of its input buffer and crossed the crossbar
    /// (ST stage). Always follows an `SaGrant` in the same cycle.
    BufferRead {
        /// Cycle of the event.
        cycle: Cycle,
        /// Router the flit is leaving.
        router: RouterId,
        /// Input port read.
        port: PortId,
        /// Virtual channel read.
        vc: VcId,
        /// Owning packet.
        packet: PacketId,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A flit was launched onto a router-to-router channel (LT stage).
    LinkTraverse {
        /// Cycle of the event (launch cycle; arrival is two cycles later).
        cycle: Cycle,
        /// The channel traversed.
        link: LinkId,
        /// Owning packet.
        packet: PacketId,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A flit reached its destination endpoint.
    Eject {
        /// Cycle of the event.
        cycle: Cycle,
        /// Destination endpoint.
        node: NodeId,
        /// Owning packet.
        packet: PacketId,
        /// Flit sequence number within the packet.
        seq: u32,
        /// True when this flit completed the packet.
        done: bool,
    },
    /// The link layer re-sent a flit (go-back-N recovery).
    Retransmit {
        /// Cycle of the event.
        cycle: Cycle,
        /// Link re-sending.
        link: LinkId,
        /// Link-layer sequence number being replayed.
        seq: u64,
    },
    /// A fault fired: corruption detected, or equipment died.
    Fault {
        /// Cycle of the event.
        cycle: Cycle,
        /// What failed.
        unit: FaultUnit,
    },
}

impl TraceEvent {
    /// The cycle stamped on the event.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Inject { cycle, .. }
            | TraceEvent::BufferWrite { cycle, .. }
            | TraceEvent::VcAlloc { cycle, .. }
            | TraceEvent::SaGrant { cycle, .. }
            | TraceEvent::BufferRead { cycle, .. }
            | TraceEvent::LinkTraverse { cycle, .. }
            | TraceEvent::Eject { cycle, .. }
            | TraceEvent::Retransmit { cycle, .. }
            | TraceEvent::Fault { cycle, .. } => cycle,
        }
    }

    /// The event's kind name as it appears in the JSONL `"ev"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Inject { .. } => "inject",
            TraceEvent::BufferWrite { .. } => "buffer_write",
            TraceEvent::VcAlloc { .. } => "vc_alloc",
            TraceEvent::SaGrant { .. } => "sa_grant",
            TraceEvent::BufferRead { .. } => "buffer_read",
            TraceEvent::LinkTraverse { .. } => "link_traverse",
            TraceEvent::Eject { .. } => "eject",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::Fault { .. } => "fault",
        }
    }
}

/// Every event kind name a JSONL trace may contain, in schema order.
pub const EVENT_KINDS: [&str; 9] = [
    "inject",
    "buffer_write",
    "vc_alloc",
    "sa_grant",
    "buffer_read",
    "link_traverse",
    "eject",
    "retransmit",
    "fault",
];

/// Receiver of flit-lifecycle events.
///
/// Implementations must not assume `finish` is called (a panicking run may
/// drop the network), but the simulation driver calls it exactly once after
/// the last cycle, so file formats needing a footer (Chrome traces) close
/// properly on every normal run.
pub trait TraceSink: Send {
    /// Called once per event, in emission order.
    fn event(&mut self, ev: &TraceEvent);

    /// Called once after the final cycle; write footers/flush here.
    fn finish(&mut self) {}

    /// Bytes this sink has emitted so far, when the sink counts them
    /// (only [`JsonlSink`] does). Checkpoints store this cursor so a
    /// resumed run can truncate its trace file back to the cut and append
    /// a byte-identical suffix.
    fn bytes_written(&self) -> Option<u64> {
        None
    }
}

impl std::fmt::Debug for dyn TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn TraceSink")
    }
}

/// Writes one compact JSON object per event per line.
///
/// Field order is fixed per kind (`ev`, `cycle`, then coordinates), all ids
/// are raw integers, and no floating point is involved, so the byte stream
/// is deterministic per (config, seed).
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    out: W,
    written: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `out`. Consider a `BufWriter` for file targets.
    pub fn new(out: W) -> Self {
        Self { out, written: 0 }
    }

    /// Wraps `out` continuing a byte count captured from an earlier sink's
    /// [`TraceSink::bytes_written`] (checkpoint resume: `out` should be the
    /// original trace file truncated to `written` and opened for append).
    pub fn resumed(out: W, written: u64) -> Self {
        Self { out, written }
    }
}

/// Formats `ev` as its single-line JSONL record (no trailing newline).
pub fn jsonl_line(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::Inject {
            cycle,
            node,
            packet,
            flits,
        } => format!(
            "{{\"ev\":\"inject\",\"cycle\":{cycle},\"node\":{},\"packet\":{},\"flits\":{flits}}}",
            node.index(),
            packet.index()
        ),
        TraceEvent::BufferWrite {
            cycle,
            router,
            port,
            vc,
            packet,
            seq,
        } => format!(
            "{{\"ev\":\"buffer_write\",\"cycle\":{cycle},\"router\":{},\"port\":{},\"vc\":{},\"packet\":{},\"seq\":{seq}}}",
            router.index(),
            port.index(),
            vc.index(),
            packet.index()
        ),
        TraceEvent::VcAlloc {
            cycle,
            router,
            in_port,
            in_vc,
            out_port,
            out_vc,
            packet,
        } => format!(
            "{{\"ev\":\"vc_alloc\",\"cycle\":{cycle},\"router\":{},\"in_port\":{},\"in_vc\":{},\"out_port\":{},\"out_vc\":{},\"packet\":{}}}",
            router.index(),
            in_port.index(),
            in_vc.index(),
            out_port.index(),
            out_vc.index(),
            packet.index()
        ),
        TraceEvent::SaGrant {
            cycle,
            router,
            in_port,
            in_vc,
            out_port,
            packet,
            seq,
        } => format!(
            "{{\"ev\":\"sa_grant\",\"cycle\":{cycle},\"router\":{},\"in_port\":{},\"in_vc\":{},\"out_port\":{},\"packet\":{},\"seq\":{seq}}}",
            router.index(),
            in_port.index(),
            in_vc.index(),
            out_port.index(),
            packet.index()
        ),
        TraceEvent::BufferRead {
            cycle,
            router,
            port,
            vc,
            packet,
            seq,
        } => format!(
            "{{\"ev\":\"buffer_read\",\"cycle\":{cycle},\"router\":{},\"port\":{},\"vc\":{},\"packet\":{},\"seq\":{seq}}}",
            router.index(),
            port.index(),
            vc.index(),
            packet.index()
        ),
        TraceEvent::LinkTraverse {
            cycle,
            link,
            packet,
            seq,
        } => format!(
            "{{\"ev\":\"link_traverse\",\"cycle\":{cycle},\"link\":{},\"packet\":{},\"seq\":{seq}}}",
            link.index(),
            packet.index()
        ),
        TraceEvent::Eject {
            cycle,
            node,
            packet,
            seq,
            done,
        } => format!(
            "{{\"ev\":\"eject\",\"cycle\":{cycle},\"node\":{},\"packet\":{},\"seq\":{seq},\"done\":{done}}}",
            node.index(),
            packet.index()
        ),
        TraceEvent::Retransmit { cycle, link, seq } => format!(
            "{{\"ev\":\"retransmit\",\"cycle\":{cycle},\"link\":{},\"seq\":{seq}}}",
            link.index()
        ),
        TraceEvent::Fault { cycle, unit } => match unit {
            FaultUnit::Corrupt { link } => format!(
                "{{\"ev\":\"fault\",\"cycle\":{cycle},\"what\":\"corrupt\",\"link\":{}}}",
                link.index()
            ),
            FaultUnit::LinkDead { link } => format!(
                "{{\"ev\":\"fault\",\"cycle\":{cycle},\"what\":\"link_dead\",\"link\":{}}}",
                link.index()
            ),
            FaultUnit::RouterDead { router } => format!(
                "{{\"ev\":\"fault\",\"cycle\":{cycle},\"what\":\"router_dead\",\"router\":{}}}",
                router.index()
            ),
        },
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn event(&mut self, ev: &TraceEvent) {
        let line = jsonl_line(ev);
        self.written += line.len() as u64 + 1; // + newline
        let _ = writeln!(self.out, "{line}");
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }

    fn bytes_written(&self) -> Option<u64> {
        Some(self.written)
    }
}

/// Writes the Chrome `trace_event` JSON array format.
///
/// Each event becomes an instant event (`"ph":"i"`): `ts` is the cycle (the
/// viewer's microsecond axis reads as cycles), `pid` groups by router (or
/// `100000 + link` for link-scoped events, `200000 + node` for endpoint
/// events) and `tid` is the port. Load the file in `chrome://tracing` or
/// drop it on <https://ui.perfetto.dev>.
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write + Send> {
    out: W,
    first: bool,
}

/// `pid` offset for link-scoped Chrome-trace events.
const CHROME_LINK_PID: usize = 100_000;
/// `pid` offset for endpoint-scoped Chrome-trace events.
const CHROME_NODE_PID: usize = 200_000;

impl<W: Write + Send> ChromeTraceSink<W> {
    /// Wraps `out` and writes the array header.
    pub fn new(mut out: W) -> Self {
        let _ = out.write_all(b"[\n");
        Self { out, first: true }
    }

    fn emit(&mut self, name: &str, ts: Cycle, pid: usize, tid: usize, args: &str) {
        let sep = if self.first { "" } else { ",\n" };
        self.first = false;
        let _ = write!(
            self.out,
            "{sep}{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
        );
    }
}

impl<W: Write + Send> TraceSink for ChromeTraceSink<W> {
    fn event(&mut self, ev: &TraceEvent) {
        let name = ev.kind();
        let ts = ev.cycle();
        match *ev {
            TraceEvent::Inject {
                node,
                packet,
                flits,
                ..
            } => self.emit(
                name,
                ts,
                CHROME_NODE_PID + node.index(),
                0,
                &format!("\"packet\":{},\"flits\":{flits}", packet.index()),
            ),
            TraceEvent::BufferWrite {
                router,
                port,
                vc,
                packet,
                seq,
                ..
            } => self.emit(
                name,
                ts,
                router.index(),
                port.index(),
                &format!(
                    "\"vc\":{},\"packet\":{},\"seq\":{seq}",
                    vc.index(),
                    packet.index()
                ),
            ),
            TraceEvent::VcAlloc {
                router,
                in_port,
                in_vc,
                out_port,
                out_vc,
                packet,
                ..
            } => self.emit(
                name,
                ts,
                router.index(),
                in_port.index(),
                &format!(
                    "\"in_vc\":{},\"out_port\":{},\"out_vc\":{},\"packet\":{}",
                    in_vc.index(),
                    out_port.index(),
                    out_vc.index(),
                    packet.index()
                ),
            ),
            TraceEvent::SaGrant {
                router,
                in_port,
                in_vc,
                out_port,
                packet,
                seq,
                ..
            } => self.emit(
                name,
                ts,
                router.index(),
                in_port.index(),
                &format!(
                    "\"in_vc\":{},\"out_port\":{},\"packet\":{},\"seq\":{seq}",
                    in_vc.index(),
                    out_port.index(),
                    packet.index()
                ),
            ),
            TraceEvent::BufferRead {
                router,
                port,
                vc,
                packet,
                seq,
                ..
            } => self.emit(
                name,
                ts,
                router.index(),
                port.index(),
                &format!(
                    "\"vc\":{},\"packet\":{},\"seq\":{seq}",
                    vc.index(),
                    packet.index()
                ),
            ),
            TraceEvent::LinkTraverse {
                link, packet, seq, ..
            } => self.emit(
                name,
                ts,
                CHROME_LINK_PID + link.index(),
                0,
                &format!("\"packet\":{},\"seq\":{seq}", packet.index()),
            ),
            TraceEvent::Eject {
                node,
                packet,
                seq,
                done,
                ..
            } => self.emit(
                name,
                ts,
                CHROME_NODE_PID + node.index(),
                0,
                &format!(
                    "\"packet\":{},\"seq\":{seq},\"done\":{done}",
                    packet.index()
                ),
            ),
            TraceEvent::Retransmit { link, seq, .. } => self.emit(
                name,
                ts,
                CHROME_LINK_PID + link.index(),
                0,
                &format!("\"seq\":{seq}"),
            ),
            TraceEvent::Fault { unit, .. } => match unit {
                FaultUnit::Corrupt { link } => self.emit(
                    name,
                    ts,
                    CHROME_LINK_PID + link.index(),
                    0,
                    "\"what\":\"corrupt\"",
                ),
                FaultUnit::LinkDead { link } => self.emit(
                    name,
                    ts,
                    CHROME_LINK_PID + link.index(),
                    0,
                    "\"what\":\"link_dead\"",
                ),
                FaultUnit::RouterDead { router } => {
                    self.emit(name, ts, router.index(), 0, "\"what\":\"router_dead\"")
                }
            },
        }
    }

    fn finish(&mut self) {
        let _ = self.out.write_all(b"\n]\n");
        let _ = self.out.flush();
    }
}

/// A clonable in-memory byte buffer implementing [`Write`].
///
/// [`crate::sim::SimRun::run`] consumes the network (and with it any
/// installed sink), so tests hand a `SharedBuffer` clone to a
/// [`JsonlSink`]/[`ChromeTraceSink`] and read the bytes back from their own
/// clone after the run.
#[derive(Clone, Debug, Default)]
pub struct SharedBuffer {
    inner: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything written so far.
    ///
    /// # Panics
    /// Panics if a writer panicked while holding the lock.
    pub fn contents(&self) -> Vec<u8> {
        self.inner.lock().expect("trace buffer poisoned").clone()
    }

    /// `contents()` as UTF-8 (lossy).
    pub fn to_text(&self) -> String {
        String::from_utf8_lossy(&self.contents()).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink that counts events per kind (cheap smoke-testing aid).
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingSink {
    /// Event counts indexed like [`EVENT_KINDS`].
    pub counts: [u64; EVENT_KINDS.len()],
}

impl CountingSink {
    /// Count for kind `name`, or 0 for unknown names.
    pub fn count(&self, name: &str) -> u64 {
        EVENT_KINDS
            .iter()
            .position(|k| *k == name)
            .map_or(0, |i| self.counts[i])
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl TraceSink for CountingSink {
    fn event(&mut self, ev: &TraceEvent) {
        if let Some(i) = EVENT_KINDS.iter().position(|k| *k == ev.kind()) {
            self.counts[i] += 1;
        }
    }
}

/// Forwards events to a [`CountingSink`] behind a shared handle, so counts
/// survive the network being consumed by the run.
#[derive(Clone, Debug, Default)]
pub struct SharedCounts {
    inner: Arc<Mutex<CountingSink>>,
}

impl SharedCounts {
    /// An empty shared counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the counts so far.
    ///
    /// # Panics
    /// Panics if a writer panicked while holding the lock.
    pub fn snapshot(&self) -> CountingSink {
        *self.inner.lock().expect("trace counts poisoned")
    }
}

impl TraceSink for SharedCounts {
    fn event(&mut self, ev: &TraceEvent) {
        self.inner.lock().expect("trace counts poisoned").event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Inject {
                cycle: 1,
                node: NodeId(3),
                packet: PacketId(7),
                flits: 6,
            },
            TraceEvent::BufferWrite {
                cycle: 2,
                router: RouterId(4),
                port: PortId(1),
                vc: VcId(0),
                packet: PacketId(7),
                seq: 0,
            },
            TraceEvent::VcAlloc {
                cycle: 3,
                router: RouterId(4),
                in_port: PortId(1),
                in_vc: VcId(0),
                out_port: PortId(2),
                out_vc: VcId(1),
                packet: PacketId(7),
            },
            TraceEvent::SaGrant {
                cycle: 4,
                router: RouterId(4),
                in_port: PortId(1),
                in_vc: VcId(0),
                out_port: PortId(2),
                packet: PacketId(7),
                seq: 0,
            },
            TraceEvent::BufferRead {
                cycle: 4,
                router: RouterId(4),
                port: PortId(1),
                vc: VcId(0),
                packet: PacketId(7),
                seq: 0,
            },
            TraceEvent::LinkTraverse {
                cycle: 4,
                link: LinkId(9),
                packet: PacketId(7),
                seq: 0,
            },
            TraceEvent::Eject {
                cycle: 8,
                node: NodeId(5),
                packet: PacketId(7),
                seq: 5,
                done: true,
            },
            TraceEvent::Retransmit {
                cycle: 9,
                link: LinkId(9),
                seq: 17,
            },
            TraceEvent::Fault {
                cycle: 10,
                unit: FaultUnit::RouterDead {
                    router: RouterId(12),
                },
            },
        ]
    }

    #[test]
    fn jsonl_lines_cover_every_kind_once() {
        let events = sample_events();
        assert_eq!(events.len(), EVENT_KINDS.len());
        for (ev, kind) in events.iter().zip(EVENT_KINDS) {
            assert_eq!(ev.kind(), kind);
            let line = jsonl_line(ev);
            assert!(
                line.contains(&format!("\"ev\":\"{kind}\"")),
                "line {line} must name its kind"
            );
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf = SharedBuffer::new();
        let mut sink = JsonlSink::new(buf.clone());
        for ev in sample_events() {
            sink.event(&ev);
        }
        sink.finish();
        let text = buf.to_text();
        assert_eq!(text.lines().count(), EVENT_KINDS.len());
        assert!(text.lines().all(|l| l.starts_with('{')));
    }

    #[test]
    fn chrome_sink_produces_a_json_array() {
        let buf = SharedBuffer::new();
        let mut sink = ChromeTraceSink::new(buf.clone());
        for ev in sample_events() {
            sink.event(&ev);
        }
        sink.finish();
        let text = buf.to_text();
        let trimmed = text.trim();
        assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{text}");
        assert_eq!(text.matches("\"ph\":\"i\"").count(), EVENT_KINDS.len());
        // No trailing comma before the closing bracket.
        assert!(!text.contains(",\n]"), "{text}");
    }

    #[test]
    fn chrome_sink_empty_trace_is_still_an_array() {
        let buf = SharedBuffer::new();
        let mut sink = ChromeTraceSink::new(buf.clone());
        sink.finish();
        assert_eq!(buf.to_text(), "[\n\n]\n");
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let shared = SharedCounts::new();
        let mut sink = shared.clone();
        for ev in sample_events() {
            sink.event(&ev);
        }
        let snap = shared.snapshot();
        assert_eq!(snap.total(), EVENT_KINDS.len() as u64);
        assert_eq!(snap.count("inject"), 1);
        assert_eq!(snap.count("no_such_kind"), 0);
    }

    #[test]
    fn cycle_accessor_matches_payload() {
        for (i, ev) in sample_events().iter().enumerate() {
            assert!(ev.cycle() >= 1, "event {i} has a cycle");
        }
    }
}
