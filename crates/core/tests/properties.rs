//! Property-based tests of the HeteroNoC design layer: placements, layout
//! generation and resource accounting.

use proptest::prelude::*;

use heteronoc::dse::{binomial, canonical_mask, enumerate_canonical};
use heteronoc::noc::network::Network;
use heteronoc::noc::types::RouterId;
use heteronoc::{network_config, Layout, Placement};
use heteronoc_noc::topology::TopologyKind;

proptest! {
    /// Center placements pick exactly `count` routers and satisfy the
    /// defining property: every selected router is at most as far from the
    /// grid centre as every unselected one (ties may split a shell, broken
    /// deterministically by index).
    #[test]
    fn center_placement_is_distance_optimal(side in 2usize..9, frac in 1usize..4) {
        let side = side * 2; // even grids
        let count = (side * side * frac / 8).max(4) & !3;
        prop_assume!(count > 0 && count <= side * side);
        let p = Placement::center(side, side, count);
        prop_assert_eq!(p.num_big(), count);
        let c = (side as f64 - 1.0) / 2.0;
        let d2 = |r: usize| {
            let x = (r % side) as f64 - c;
            let y = (r / side) as f64 - c;
            x * x + y * y
        };
        let max_in = (0..side * side)
            .filter(|&r| p.is_big(RouterId(r)))
            .map(d2)
            .fold(0.0f64, f64::max);
        let min_out = (0..side * side)
            .filter(|&r| !p.is_big(RouterId(r)))
            .map(d2)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            max_in <= min_out + 1e-9,
            "selected max d2 {max_in} exceeds unselected min d2 {min_out}"
        );
    }

    /// Diagonal placements cover every row and column with >= 1 big router
    /// and count 2n (even n) or 2n-1 (odd n).
    #[test]
    fn diagonal_placement_structure(n in 2usize..12) {
        let p = Placement::diagonals(n, n);
        let expect = if n % 2 == 0 { 2 * n } else { 2 * n - 1 };
        prop_assert_eq!(p.num_big(), expect);
        for k in 0..n {
            prop_assert!((0..n).any(|x| p.is_big(RouterId(k * n + x))), "row {k}");
            prop_assert!((0..n).any(|y| p.is_big(RouterId(y * n + k))), "col {k}");
        }
    }

    /// Any placement-derived custom +BL layout yields a valid network and
    /// conserves the VC identity: sum = 2*small + 6*big.
    #[test]
    fn custom_layouts_always_build(bits in prop::collection::vec(any::<bool>(), 16)) {
        let big: Vec<RouterId> = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| RouterId(i))
            .collect();
        let placement = Placement::from_big_routers(4, 4, &big);
        let layout = Layout::Custom {
            placement: placement.clone(),
            links: true,
            name: "prop".into(),
        };
        let cfg = network_config(&layout, TopologyKind::Mesh { width: 4, height: 4 });
        let total: usize = cfg.routers.iter().map(|r| r.vcs_per_port).sum();
        prop_assert_eq!(total, 2 * placement.num_small() + 6 * placement.num_big());
        prop_assert!(Network::new(cfg).is_ok());
    }

    /// Canonicalization is idempotent and invariant within an orbit.
    #[test]
    fn canonical_mask_idempotent(mask in 0u32..65536) {
        let c = canonical_mask(mask, 4);
        prop_assert_eq!(canonical_mask(c, 4), c);
        prop_assert!(c <= mask);
    }

    /// Orbit enumeration covers the full space: sizes sum to C(16, k).
    #[test]
    fn enumeration_is_complete(k in 1usize..5) {
        let canon = enumerate_canonical(4, k);
        let total = heteronoc::dse::orbit_total(4, &canon);
        prop_assert_eq!(total, binomial(16, k as u64));
    }
}
