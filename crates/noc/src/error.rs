//! Error types for network configuration validation.

use std::error::Error;
use std::fmt;

/// Reason a [`crate::config::NetworkConfig`] failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// The per-router configuration list does not match the topology's
    /// router count.
    RouterCountMismatch {
        /// Routers in the topology.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
    /// A router was configured with zero virtual channels.
    ZeroVcs {
        /// The offending router index.
        router: usize,
    },
    /// A router was configured with a zero-depth buffer.
    ZeroBufferDepth {
        /// The offending router index.
        router: usize,
    },
    /// The global flit width is zero.
    ZeroFlitWidth,
    /// A link is narrower than the flit width, or not a whole multiple of it.
    BadLinkWidth {
        /// The offending link index.
        link: usize,
        /// Its configured width in bits.
        width: u32,
        /// The global flit width in bits.
        flit_width: u32,
    },
    /// Torus routing needs at least 2 VCs per port for dateline classes.
    TorusNeedsTwoVcs {
        /// The offending router index.
        router: usize,
    },
    /// Table routing is enabled but a router has fewer than 2 VCs
    /// (one escape VC must remain available).
    TableNeedsEscapeVc {
        /// The offending router index.
        router: usize,
    },
    /// The configured frequency is not positive and finite.
    BadFrequency {
        /// The rejected value in GHz.
        ghz: f64,
    },
    /// A fault-plan bit-error probability is outside `[0, 1]` (or NaN).
    BadErrorProbability {
        /// The rejected probability.
        p: f64,
    },
    /// The fault-plan retry limit is zero (link-level retransmission needs
    /// at least one attempt to be meaningful).
    ZeroRetryLimit,
    /// The fault-plan retry timeout is shorter than the link round trip
    /// (flit out at +2, ack back at +1), so every transmission would time
    /// out before its ack could arrive.
    RetryTimeoutTooShort {
        /// The rejected timeout in cycles.
        timeout: u64,
        /// The minimum admissible timeout.
        min: u64,
    },
    /// The end-to-end recovery retention depth is zero, so no source could
    /// ever inject a packet.
    ZeroRetentionDepth,
    /// A hard fault is scheduled at or beyond the simulation horizon, so it
    /// could never fire.
    FaultBeyondHorizon {
        /// The scheduled fault cycle.
        cycle: u64,
        /// The simulation horizon (`max_cycles`).
        horizon: u64,
    },
    /// A fault-plan link id does not exist in the topology.
    FaultLinkOutOfRange {
        /// The rejected link index.
        link: usize,
        /// Links in the topology.
        links: usize,
    },
    /// A fault-plan router id does not exist in the topology.
    FaultRouterOutOfRange {
        /// The rejected router index.
        router: usize,
        /// Routers in the topology.
        routers: usize,
    },
    /// A [`crate::config::NetworkConfigBuilder::router`] override names a
    /// router the topology does not have.
    RouterIndexOutOfRange {
        /// The rejected router index.
        router: usize,
        /// Routers in the topology.
        routers: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::RouterCountMismatch { expected, got } => write!(
                f,
                "router config count {got} does not match topology router count {expected}"
            ),
            ConfigError::ZeroVcs { router } => {
                write!(f, "router {router} configured with zero virtual channels")
            }
            ConfigError::ZeroBufferDepth { router } => {
                write!(f, "router {router} configured with zero buffer depth")
            }
            ConfigError::ZeroFlitWidth => write!(f, "flit width must be non-zero"),
            ConfigError::BadLinkWidth {
                link,
                width,
                flit_width,
            } => write!(
                f,
                "link {link} width {width}b is not a positive multiple of the flit width {flit_width}b"
            ),
            ConfigError::TorusNeedsTwoVcs { router } => write!(
                f,
                "torus dateline routing requires at least 2 VCs per port (router {router})"
            ),
            ConfigError::TableNeedsEscapeVc { router } => write!(
                f,
                "table routing requires at least 2 VCs per port for the escape class (router {router})"
            ),
            ConfigError::BadFrequency { ghz } => {
                write!(f, "network frequency {ghz} GHz is not positive and finite")
            }
            ConfigError::BadErrorProbability { p } => {
                write!(f, "bit-error probability {p} is not within [0, 1]")
            }
            ConfigError::ZeroRetryLimit => {
                write!(f, "retry limit must be at least 1")
            }
            ConfigError::RetryTimeoutTooShort { timeout, min } => write!(
                f,
                "retry timeout {timeout} cycles is shorter than the link round trip ({min} cycles)"
            ),
            ConfigError::ZeroRetentionDepth => {
                write!(f, "recovery retention depth must be at least 1")
            }
            ConfigError::FaultBeyondHorizon { cycle, horizon } => write!(
                f,
                "hard fault at cycle {cycle} lies at or beyond the simulation horizon {horizon}"
            ),
            ConfigError::FaultLinkOutOfRange { link, links } => write!(
                f,
                "fault plan names link {link} but the topology has {links} links"
            ),
            ConfigError::FaultRouterOutOfRange { router, routers } => write!(
                f,
                "fault plan names router {router} but the topology has {routers} routers"
            ),
            ConfigError::RouterIndexOutOfRange { router, routers } => write!(
                f,
                "builder overrides router {router} but the topology has {routers} routers"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_reason() {
        let e = ConfigError::ZeroVcs { router: 3 };
        assert!(e.to_string().contains("router 3"));
        let e = ConfigError::BadLinkWidth {
            link: 1,
            width: 100,
            flit_width: 192,
        };
        assert!(e.to_string().contains("100b"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(ConfigError::ZeroFlitWidth);
    }
}
