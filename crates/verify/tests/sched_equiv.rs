//! Active-set scheduler equivalence: the wake-set engine must be a pure
//! scheduling optimization.
//!
//! For random (layout × traffic × seed × injection rate × fault plan)
//! configurations, a run under the default [`EngineMode::ActiveSet`] engine
//! and one under the walk-everything [`EngineMode::PollAll`] reference must
//! produce identical statistics fingerprints, byte-identical JSONL traces,
//! and byte-identical periodic checkpoints — and a checkpoint written by one
//! engine must resume correctly under the *other* (wake sets and port
//! occupancy are derived state, rebuilt on restore, never serialized).

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use heteronoc::noc::checkpoint::Checkpoint;
use heteronoc::noc::fault::FaultPlan;
use heteronoc::noc::network::Network;
use heteronoc::noc::sched::EngineMode;
use heteronoc::noc::sim::{InjectionProcess, SimOutcome, SimParams, SimRun, Traffic};
use heteronoc::noc::trace::{JsonlSink, SharedBuffer};
use heteronoc::noc::types::Rate;
use heteronoc::traffic::{BitComplement, Tornado, Transpose, UniformRandom};
use heteronoc::{mesh_config, Layout};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("heteronoc_sched_eq_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn traffic_by_index(i: usize) -> Box<dyn Traffic> {
    match i % 4 {
        0 => Box::new(UniformRandom),
        1 => Box::new(Transpose::new(8)),
        2 => Box::new(BitComplement),
        _ => Box::new(Tornado::new(8, 8)),
    }
}

fn fingerprint(out: &SimOutcome) -> (u64, u64, u64, u64, u64, u64) {
    (
        out.cycles,
        out.stats.packets_retired,
        out.stats.latency.total,
        out.stats.latency.blocking,
        out.dropped,
        out.stats.routers.iter().map(|r| r.xbar_flits).sum::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Active-set vs poll-all: identical stats, identical trace bytes,
    /// byte-identical periodic checkpoints, and cross-engine resume.
    #[test]
    fn active_set_engine_is_equivalent_to_poll_all(
        layout_idx in 0usize..7,
        traffic_idx in 0usize..4,
        seed in 1u64..10_000,
        rate_idx in 0usize..3,
        ber_idx in 0usize..3,
        fault_seed in 1u64..1_000,
        every in 60u64..400,
    ) {
        let layout = Layout::all_seven()[layout_idx].clone();
        let cfg = mesh_config(&layout);
        let plan = FaultPlan::transient([0.0, 5e-5, 2e-4][ber_idx], fault_seed);
        let params = SimParams {
            injection_rate: Rate::new([0.005, 0.02, 0.05][rate_idx]),
            warmup_packets: 30,
            measure_packets: 250,
            max_cycles: 200_000,
            seed,
            process: InjectionProcess::Bernoulli,
            watchdog: Some(100_000),
        };
        let mk_net = || Network::with_faults(cfg.clone(), plan.clone()).expect("valid config");
        let dir = scratch(&format!(
            "{layout_idx}_{traffic_idx}_{seed}_{rate_idx}_{ber_idx}_{every}"
        ));

        // One traced + checkpointed run per engine mode.
        let run_with = |mode: EngineMode, ckpt: &PathBuf| -> (SimOutcome, Vec<u8>) {
            let buf = SharedBuffer::new();
            let mut traffic = traffic_by_index(traffic_idx);
            let out = SimRun::new(mk_net(), params)
                .engine(mode)
                .traffic(traffic.as_mut())
                .trace(Box::new(JsonlSink::new(buf.clone())))
                .checkpoint_every(ckpt, every)
                .run()
                .expect("simulation run");
            (out, buf.contents())
        };
        let active_ckpt = dir.join("active.ckpt");
        let pollall_ckpt = dir.join("pollall.ckpt");
        let (active, active_trace) = run_with(EngineMode::ActiveSet, &active_ckpt);
        let (pollall, pollall_trace) = run_with(EngineMode::PollAll, &pollall_ckpt);

        prop_assert_eq!(fingerprint(&active), fingerprint(&pollall),
            "active-set stats diverged from the poll-all reference");
        prop_assert_eq!(&active_trace, &pollall_trace,
            "active-set JSONL trace diverged from the poll-all reference");

        // The last periodic checkpoint (if the run lived long enough to
        // write one) must be byte-identical: wake sets and port occupancy
        // are derived, not serialized.
        if active.cycles >= every {
            let a = fs::read(&active_ckpt).expect("read active checkpoint");
            let b = fs::read(&pollall_ckpt).expect("read poll-all checkpoint");
            prop_assert_eq!(a, b, "checkpoint bytes differ between engines");

            // Cross-engine resume: restore the active-set engine's
            // checkpoint under the poll-all reference (and vice versa);
            // both must land on the uninterrupted outcome.
            for (path, mode) in [
                (&active_ckpt, EngineMode::PollAll),
                (&pollall_ckpt, EngineMode::ActiveSet),
            ] {
                let ckpt = Checkpoint::load(path).expect("load checkpoint");
                let mut traffic = traffic_by_index(traffic_idx);
                let resumed = SimRun::new(mk_net(), params)
                    .engine(mode)
                    .traffic(traffic.as_mut())
                    .resume_from(ckpt)
                    .run()
                    .expect("resumed run");
                prop_assert_eq!(fingerprint(&resumed), fingerprint(&active),
                    "cross-engine resume under {:?} diverged", mode);
            }
        }

        fs::remove_dir_all(&dir).ok();
    }
}

/// A deterministic (non-proptest) smoke of the same property at the pinned
/// golden operating point, with self-profiling enabled so the scheduler
/// report is exercised alongside: the active-set engine must skip work
/// (fewer router visits than the polled-equivalent) while changing nothing.
#[test]
fn active_set_skips_work_without_changing_results() {
    let params = SimParams {
        injection_rate: Rate::new(0.02),
        warmup_packets: 200,
        measure_packets: 2_000,
        max_cycles: 500_000,
        seed: 0xFA01,
        process: InjectionProcess::Bernoulli,
        ..SimParams::default()
    };
    let run = |mode: EngineMode| {
        let net = Network::new(mesh_config(&Layout::Baseline)).unwrap();
        SimRun::new(net, params)
            .engine(mode)
            .profile(true)
            .run()
            .expect("simulation run")
    };
    let active = run(EngineMode::ActiveSet);
    let pollall = run(EngineMode::PollAll);
    assert_eq!(fingerprint(&active), fingerprint(&pollall));

    let sched = active.profile.expect("profile recorded").sched;
    assert_eq!(sched.cycles, active.cycles);
    assert!(
        sched.router_visits_skipped > 0,
        "active-set engine at rate 0.02 should skip some router visits"
    );
    let reference = pollall.profile.expect("profile recorded").sched;
    assert_eq!(
        reference.router_visits_skipped, 0,
        "poll-all reference must visit every router every cycle"
    );
}
