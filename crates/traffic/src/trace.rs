//! Memory trace format for the trace-driven CMP simulator.
//!
//! The paper replays Simics traces of "load/stores and the number of
//! non-memory instructions between them" (§5.2). This module defines that
//! record format; [`crate::workloads`] synthesizes such traces per
//! benchmark (the originals are proprietary — see DESIGN.md substitutions).

use serde::{Deserialize, Serialize};

/// Kind of memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MemOp {
    /// A load (read).
    Load,
    /// A store (write).
    Store,
}

/// One trace record: `gap` non-memory instructions followed by one memory
/// operation at byte address `addr`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Non-memory instructions preceding the access.
    pub gap: u32,
    /// Load or store.
    pub op: MemOp,
    /// Byte address.
    pub addr: u64,
}

/// A source of trace records for one hardware thread.
///
/// Implementations must be deterministic for reproducible simulations; the
/// synthetic generators take an explicit seed.
pub trait TraceSource {
    /// Next record, or `None` when the trace is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord>;
}

/// Replays a fixed vector of records (tests, file-loaded traces).
#[derive(Clone, Debug, Default)]
pub struct VecTrace {
    records: Vec<TraceRecord>,
    pos: usize,
}

impl VecTrace {
    /// Creates a trace that replays `records` once.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        Self { records, pos: 0 }
    }

    /// Records remaining.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.pos
    }
}

impl TraceSource for VecTrace {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let r = self.records.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }
}

impl FromIterator<TraceRecord> for VecTrace {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_replays_in_order() {
        let recs = vec![
            TraceRecord {
                gap: 3,
                op: MemOp::Load,
                addr: 0x100,
            },
            TraceRecord {
                gap: 0,
                op: MemOp::Store,
                addr: 0x180,
            },
        ];
        let mut t = VecTrace::new(recs.clone());
        assert_eq!(t.remaining(), 2);
        assert_eq!(t.next_record(), Some(recs[0]));
        assert_eq!(t.next_record(), Some(recs[1]));
        assert_eq!(t.next_record(), None);
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn collects_from_iterator() {
        let t: VecTrace = (0..5)
            .map(|i| TraceRecord {
                gap: i,
                op: MemOp::Load,
                addr: u64::from(i) * 128,
            })
            .collect();
        assert_eq!(t.remaining(), 5);
    }
}
