//! Criterion benches over the network-simulation kernels: cycle throughput
//! and end-to-end packet delivery for the homogeneous baseline and the best
//! HeteroNoC layout (the kernels behind Figs. 1, 7, 8, 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use heteronoc::noc::network::Network;
use heteronoc::noc::packet::PacketClass;
use heteronoc::noc::sim::{InjectionProcess, SimParams, SimRun};
use heteronoc::noc::types::{Bits, NodeId, Rate};
use heteronoc::{mesh_config, Layout};

fn bench_step_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_step");
    g.sample_size(10);
    for layout in [Layout::Baseline, Layout::DiagonalBL] {
        g.bench_with_input(
            BenchmarkId::new("1k_cycles_ur", layout.name()),
            &layout,
            |b, layout| {
                b.iter(|| {
                    let mut net = Network::new(mesh_config(layout)).expect("valid");
                    // Steady traffic: refill source queues periodically.
                    for cycle in 0..1_000u64 {
                        if cycle % 10 == 0 {
                            for n in 0..64 {
                                net.enqueue(
                                    NodeId(n),
                                    NodeId((n * 31 + 17) % 64),
                                    Bits(1024),
                                    PacketClass::Data,
                                    0,
                                );
                            }
                        }
                        net.step();
                    }
                    black_box(net.in_flight())
                })
            },
        );
    }
    g.finish();
}

fn bench_open_loop_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("open_loop");
    g.sample_size(10);
    for layout in [Layout::Baseline, Layout::DiagonalBL] {
        g.bench_with_input(
            BenchmarkId::new("2k_packets_ur", layout.name()),
            &layout,
            |b, layout| {
                b.iter(|| {
                    let net = Network::new(mesh_config(layout)).expect("valid");
                    let out = SimRun::new(
                        net,
                        SimParams {
                            injection_rate: Rate::new(0.02),
                            warmup_packets: 100,
                            measure_packets: 2_000,
                            max_cycles: 300_000,
                            seed: 1,
                            process: InjectionProcess::Bernoulli,
                            watchdog: Some(100_000),
                        },
                    )
                    .run()
                    .expect("simulation run");
                    black_box(out.stats.latency.total)
                })
            },
        );
    }
    g.finish();
}

/// Observability tax: the same open-loop batch with no observers (the
/// hot-path configuration the `is_some()` guards must keep at baseline
/// speed), with a streaming JSONL trace, and with epochs + profiling.
fn bench_observability(c: &mut Criterion) {
    use heteronoc::noc::trace::JsonlSink;

    let run = |trace: bool, epochs: bool| -> u64 {
        let net = Network::new(mesh_config(&Layout::Baseline)).expect("valid");
        let mut run = SimRun::new(
            net,
            SimParams {
                injection_rate: Rate::new(0.02),
                warmup_packets: 100,
                measure_packets: 2_000,
                max_cycles: 300_000,
                seed: 1,
                process: InjectionProcess::Bernoulli,
                watchdog: Some(100_000),
            },
        );
        if trace {
            run = run.trace(Box::new(JsonlSink::new(std::io::sink())));
        }
        if epochs {
            run = run.epochs(256).profile(true);
        }
        run.run().expect("simulation run").stats.latency.total
    };

    let mut g = c.benchmark_group("observability");
    g.sample_size(10);
    g.bench_function("off", |b| b.iter(|| black_box(run(false, false))));
    g.bench_function("jsonl_trace", |b| b.iter(|| black_box(run(true, false))));
    g.bench_function("epochs_profile", |b| b.iter(|| black_box(run(false, true))));
    g.finish();
}

criterion_group!(
    benches,
    bench_step_throughput,
    bench_open_loop_batch,
    bench_observability
);
criterion_main!(benches);
