//! Integration: the power model driven by real simulation statistics.

use heteronoc::noc::network::Network;
use heteronoc::noc::sim::{InjectionProcess, SimParams, SimRun};
use heteronoc::noc::types::Rate;
use heteronoc::power::netpower::CALIBRATION_ACTIVITY;
use heteronoc::power::{Activity, NetworkPower};
use heteronoc::{mesh_config, Layout};

fn sim(
    layout: &Layout,
    rate: f64,
) -> (
    heteronoc::noc::NetworkConfig,
    heteronoc::noc::stats::NetStats,
) {
    let cfg = mesh_config(layout);
    let net = Network::new(cfg.clone()).expect("valid");
    let out = SimRun::new(
        net,
        SimParams {
            injection_rate: Rate::new(rate),
            warmup_packets: 200,
            measure_packets: 3_000,
            max_cycles: 500_000,
            seed: 3,
            process: InjectionProcess::Bernoulli,
            watchdog: Some(100_000),
        },
    )
    .run()
    .expect("simulation run");
    (cfg, out.stats)
}

#[test]
fn network_power_grows_with_load() {
    let np = NetworkPower::paper_calibrated();
    let mut prev = 0.0;
    for rate in [0.005, 0.02, 0.045] {
        let (cfg, stats) = sim(&Layout::Baseline, rate);
        let graph = cfg.build_graph();
        let w = np.evaluate(&cfg, &graph, &stats).total_w();
        assert!(
            w > prev,
            "power at rate {rate} ({w:.2} W) must exceed {prev:.2} W"
        );
        prev = w;
    }
}

#[test]
fn measured_power_stays_between_leakage_floor_and_max_activity() {
    let np = NetworkPower::paper_calibrated();
    let (cfg, stats) = sim(&Layout::DiagonalBL, 0.03);
    let graph = cfg.build_graph();
    let measured = np.evaluate(&cfg, &graph, &stats).total_w();
    let floor = np.evaluate_at_activity(&cfg, &graph, 0.0).total_w();
    let ceil = np.evaluate_at_activity(&cfg, &graph, 1.0).total_w();
    assert!(measured > floor, "{measured} <= floor {floor}");
    assert!(measured < ceil, "{measured} >= ceil {ceil}");
}

#[test]
fn center_routers_burn_more_power_than_corners_under_ur() {
    let np = NetworkPower::paper_calibrated();
    let (cfg, stats) = sim(&Layout::Baseline, 0.04);
    let graph = cfg.build_graph();
    let report = np.evaluate(&cfg, &graph, &stats);
    let center: f64 = [27usize, 28, 35, 36]
        .iter()
        .map(|&r| report.per_router_w[r])
        .sum();
    let corners: f64 = [0usize, 7, 56, 63]
        .iter()
        .map(|&r| report.per_router_w[r])
        .sum();
    assert!(
        center > corners,
        "center {center:.2} W must exceed corners {corners:.2} W"
    );
}

#[test]
fn activity_extraction_is_sane() {
    let (cfg, stats) = sim(&Layout::Baseline, 0.03);
    let graph = cfg.build_graph();
    for r in 0..graph.num_routers() {
        let a = Activity::from_stats(&stats, &graph, r);
        for (name, v) in [
            ("buffers", a.buffers),
            ("crossbar", a.crossbar),
            ("links", a.links),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "router {r} {name} activity {v} out of range"
            );
        }
        assert!(a.arbiters >= 0.0);
    }
}

#[test]
fn breakdown_components_sum_to_total() {
    let np = NetworkPower::paper_calibrated();
    let (cfg, stats) = sim(&Layout::CenterBL, 0.02);
    let graph = cfg.build_graph();
    let report = np.evaluate(&cfg, &graph, &stats);
    let per_router_sum: f64 = report.per_router_w.iter().sum();
    assert!((per_router_sum - report.total_w()).abs() < 1e-6);
    assert!(report.breakdown.buffers > 0.0);
    assert!(report.breakdown.links > 0.0);
}

#[test]
fn static_estimate_matches_calibration_at_half_activity() {
    // A homogeneous 5-port network at exactly 50% activity must evaluate to
    // (interior routers) x the Table 1 baseline power, scaled by port count.
    let np = NetworkPower::paper_calibrated();
    let cfg = mesh_config(&Layout::Baseline);
    let graph = cfg.build_graph();
    let report = np.evaluate_at_activity(&cfg, &graph, CALIBRATION_ACTIVITY);
    // Interior router index 27 has 5 ports.
    let interior = report.per_router_w[27];
    assert!(
        (interior - 0.67).abs() < 0.02,
        "interior router at calibration: {interior:.3} W vs 0.67 W"
    );
    // A corner router (3 ports) scales to 3/5 of that.
    let corner = report.per_router_w[0];
    assert!(
        (corner - 0.67 * 3.0 / 5.0).abs() < 0.02,
        "corner {corner:.3} W"
    );
}
