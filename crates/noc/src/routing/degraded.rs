//! Up*/down* route-table generation around dead channels.
//!
//! After a hard fault the mesh is no longer a mesh: X-Y routing would either
//! try to cross the dead link forever or need adaptive detours with their own
//! deadlock story. Instead the engine regenerates a full routing table over
//! the surviving graph with the classic **up*/down*** scheme:
//!
//! 1. BFS from a root (the lowest-id live router) assigns every reachable
//!    router a level; routers are totally ordered by `(level, id)`.
//! 2. A directed hop `u -> v` is **up** when `ord(v) < ord(u)` and **down**
//!    otherwise. Every legal path climbs zero or more up hops, then descends
//!    zero or more down hops — a down hop is never followed by an up hop.
//! 3. The next hop at `cur` toward `dst` is a pure function of `(cur, dst)`:
//!    *if `dst` is reachable from `cur` by down hops alone, take the first
//!    hop of a shortest such down-only path; otherwise take the up hop that
//!    minimizes the remaining climb-then-descend distance.* Because the rule
//!    is Markovian in `cur`, the stored path for `(src, dst)` and the chain
//!    of per-hop lookups agree exactly — which is what lets the
//!    channel-dependency walk in `heteronoc-verify` enumerate every
//!    dependency the table can create.
//!
//! Deadlock freedom is the textbook argument: every channel is an up or a
//! down channel, an all-up (or all-down) dependency cycle would strictly
//! decrease (increase) the total order, and a mixed cycle needs the
//! forbidden down→up transition. The generated table is nevertheless gated
//! on the explicit CDG acyclicity proof before the engine installs it —
//! the proof is cheap and guards the implementation, not just the theory.
//!
//! Progress: each down hop decreases the down-distance by one, and each up
//! hop decreases the climb-then-descend distance by one, so lookups can
//! never loop. Pairs separated by the fault (or touching a dead router) get
//! no table entry and are reported in [`DegradedRouting::unreachable`].

use std::collections::VecDeque;

use crate::topology::TopologyGraph;
use crate::types::{LinkId, RouterId};

use super::RouteTable;

/// Result of regenerating routes around dead channels.
#[derive(Clone, Debug, Default)]
pub struct DegradedRouting {
    /// Full `(src, dst)` route table over the surviving graph.
    pub table: RouteTable,
    /// Live router pairs with no surviving path (src, dst).
    pub unreachable: Vec<(RouterId, RouterId)>,
    /// Routers that are dead or cut off from the root component entirely.
    pub isolated: Vec<RouterId>,
}

impl DegradedRouting {
    /// True when every live pair kept a route.
    pub fn fully_connected(&self) -> bool {
        self.unreachable.is_empty() && self.isolated.is_empty()
    }
}

const INF: u32 = u32::MAX;

/// Builds an up*/down* routing table for the topology minus `dead_links`
/// (unidirectional ids; pass both directions of a failed physical channel)
/// and minus every link incident to a router in `dead_routers`.
pub fn degraded_routing(
    g: &TopologyGraph,
    dead_links: &[LinkId],
    dead_routers: &[RouterId],
) -> DegradedRouting {
    let n = g.num_routers();
    let mut router_dead = vec![false; n];
    for &r in dead_routers {
        router_dead[r.index()] = true;
    }
    let mut link_dead = vec![false; g.num_links()];
    for &l in dead_links {
        link_dead[l.index()] = true;
    }

    // Live directed adjacency.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, l) in g.links().iter().enumerate() {
        if link_dead[i] || router_dead[l.src.index()] || router_dead[l.dst.index()] {
            continue;
        }
        succ[l.src.index()].push(l.dst.index());
    }
    for s in &mut succ {
        s.sort_unstable();
        s.dedup();
    }

    // BFS levels from the lowest-id live router; ord(v) = (level, id).
    let root = match (0..n).find(|&r| !router_dead[r]) {
        Some(r) => r,
        None => {
            return DegradedRouting {
                table: RouteTable::new(),
                unreachable: Vec::new(),
                isolated: (0..n).map(RouterId).collect(),
            };
        }
    };
    let mut level = vec![INF; n];
    level[root] = 0;
    let mut q = VecDeque::from([root]);
    while let Some(u) = q.pop_front() {
        for &v in &succ[u] {
            if level[v] == INF {
                level[v] = level[u] + 1;
                q.push_back(v);
            }
        }
    }
    let connected: Vec<usize> = (0..n).filter(|&r| level[r] != INF).collect();
    let isolated: Vec<RouterId> = (0..n).filter(|&r| level[r] == INF).map(RouterId).collect();
    let ord = |v: usize| (level[v], v);

    // ord-ascending sweep order for the climb distances.
    let mut by_ord = connected.clone();
    by_ord.sort_unstable_by_key(|&v| ord(v));

    // Reversed down edges: preds_down[v] = every u with a down edge u -> v.
    let mut preds_down: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &u in &connected {
        for &v in &succ[u] {
            if level[v] != INF && ord(v) > ord(u) {
                preds_down[v].push(u);
            }
        }
    }

    let mut result = DegradedRouting {
        table: RouteTable::new(),
        unreachable: Vec::new(),
        isolated,
    };

    let mut down = vec![INF; n]; // down-only distance to dst
    let mut climb = vec![INF; n]; // distance under the up-then-down rule
    for &dst in &connected {
        down.iter_mut().for_each(|d| *d = INF);
        down[dst] = 0;
        q.clear();
        q.push_back(dst);
        while let Some(v) = q.pop_front() {
            for &u in &preds_down[v] {
                if down[u] == INF {
                    down[u] = down[v] + 1;
                    q.push_back(u);
                }
            }
        }
        // Climb distances in ord order: an up hop goes to a smaller ord, so
        // every dependency is already final when a router is visited.
        for &v in &by_ord {
            climb[v] = if down[v] != INF {
                down[v]
            } else {
                succ[v]
                    .iter()
                    .filter(|&&w| level[w] != INF && ord(w) < ord(v))
                    .map(|&w| climb[w].saturating_add(1))
                    .min()
                    .unwrap_or(INF)
            };
        }

        for &src in &connected {
            if src == dst {
                continue;
            }
            if climb[src] == INF {
                result.unreachable.push((RouterId(src), RouterId(dst)));
                continue;
            }
            let mut path = vec![RouterId(src)];
            let mut cur = src;
            while cur != dst {
                let next = if down[cur] != INF {
                    succ[cur]
                        .iter()
                        .copied()
                        .filter(|&w| ord(w) > ord(cur) && down[w] == down[cur] - 1)
                        .min()
                } else {
                    succ[cur]
                        .iter()
                        .copied()
                        .filter(|&w| level[w] != INF && ord(w) < ord(cur))
                        .filter(|&w| climb[w] == climb[cur] - 1)
                        .min()
                };
                cur = next.expect("finite distance implies a progress hop");
                path.push(RouterId(cur));
            }
            result.table.insert(RouterId(src), RouterId(dst), path);
        }
    }
    result.unreachable.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::mesh;

    fn both_directions(g: &TopologyGraph, a: RouterId, b: RouterId) -> Vec<LinkId> {
        g.links()
            .iter()
            .enumerate()
            .filter(|(_, l)| (l.src, l.dst) == (a, b) || (l.src, l.dst) == (b, a))
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Every stored path must be hop-by-hop consistent with per-router
    /// lookups (the property the CDG walk relies on).
    fn assert_markovian(tbl: &RouteTable) {
        for ((_, dst), path) in tbl.pairs() {
            for w in path.windows(2) {
                assert_eq!(
                    tbl.next_hop(w[0], w[0], dst),
                    Some(w[1]),
                    "suffix of a stored path must equal the per-hop lookup"
                );
            }
        }
    }

    #[test]
    fn healthy_mesh_is_fully_connected() {
        let g = mesh::build(4, 4);
        let d = degraded_routing(&g, &[], &[]);
        assert!(d.fully_connected());
        assert_eq!(d.table.len(), 16 * 15);
        assert_markovian(&d.table);
    }

    #[test]
    fn paths_avoid_dead_link() {
        let g = mesh::build(4, 4);
        let dead = both_directions(&g, RouterId(5), RouterId(6));
        assert_eq!(dead.len(), 2);
        let d = degraded_routing(&g, &dead, &[]);
        assert!(d.fully_connected());
        assert_markovian(&d.table);
        for ((_, _), path) in d.table.pairs() {
            for w in path.windows(2) {
                assert!(
                    !((w[0], w[1]) == (RouterId(5), RouterId(6))
                        || (w[0], w[1]) == (RouterId(6), RouterId(5))),
                    "path crosses the dead link"
                );
            }
        }
        // The direct neighbours still reach each other, the long way round.
        let p = d.table.path(RouterId(5), RouterId(6)).unwrap();
        assert!(p.len() > 2);
    }

    #[test]
    fn dead_router_isolates_it_and_spares_the_rest() {
        let g = mesh::build(4, 4);
        let d = degraded_routing(&g, &[], &[RouterId(5)]);
        assert_eq!(d.isolated, vec![RouterId(5)]);
        assert!(d.unreachable.is_empty());
        // 15 live routers, all pairs routed.
        assert_eq!(d.table.len(), 15 * 14);
        assert_markovian(&d.table);
        for ((s, t), path) in d.table.pairs() {
            assert!(!path.contains(&RouterId(5)), "{s}->{t} rides a dead router");
        }
    }

    #[test]
    fn cut_network_reports_unreachable_pairs() {
        // Kill the entire column boundary of a 2x2 mesh: r0-r1 and r2-r3,
        // splitting {0,2} from {1,3}.
        let g = mesh::build(2, 2);
        let mut dead = both_directions(&g, RouterId(0), RouterId(1));
        dead.extend(both_directions(&g, RouterId(2), RouterId(3)));
        let d = degraded_routing(&g, &dead, &[]);
        // Root component is {0,2}; 1 and 3 fall out of the BFS entirely.
        assert_eq!(d.isolated, vec![RouterId(1), RouterId(3)]);
        assert_eq!(d.table.len(), 2);
        assert!(d.table.path(RouterId(0), RouterId(2)).is_some());
    }

    #[test]
    fn up_down_phase_never_reverses() {
        let g = mesh::build(8, 8);
        let dead = both_directions(&g, RouterId(27), RouterId(28));
        let d = degraded_routing(&g, &dead, &[]);
        assert!(d.fully_connected());
        // Recompute the order exactly as the generator does.
        let n = g.num_routers();
        let mut level = vec![u32::MAX; n];
        level[0] = 0;
        let mut q = std::collections::VecDeque::from([0usize]);
        let dead_set: std::collections::HashSet<_> = dead.iter().copied().collect();
        while let Some(u) = q.pop_front() {
            for (i, l) in g.links().iter().enumerate() {
                if l.src.index() == u
                    && !dead_set.contains(&LinkId(i))
                    && level[l.dst.index()] == u32::MAX
                {
                    level[l.dst.index()] = level[u] + 1;
                    q.push_back(l.dst.index());
                }
            }
        }
        let ord = |v: RouterId| (level[v.index()], v.index());
        for ((s, t), path) in d.table.pairs() {
            let mut descending = false;
            for w in path.windows(2) {
                let down = ord(w[1]) > ord(w[0]);
                if descending {
                    assert!(down, "{s}->{t} climbs after descending: {path:?}");
                }
                descending = down;
            }
        }
    }
}
