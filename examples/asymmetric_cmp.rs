//! Case study II in miniature (§7): an asymmetric CMP — four large
//! out-of-order cores at the corners running a latency-sensitive workload
//! (libquantum) among sixty small in-order cores running SPECjbb — on the
//! homogeneous network, the heterogeneous network, and the heterogeneous
//! network with table-based routing for the large cores' packets.
//!
//! ```sh
//! cargo run --release -p heteronoc-examples --bin asymmetric_cmp
//! ```

use heteronoc::noc::types::{NodeId, RouterId};
use heteronoc::traffic::workloads::{Benchmark, SyntheticWorkload};
use heteronoc::traffic::TraceSource;
use heteronoc::{mesh_config, mesh_config_with_table, Layout};
use heteronoc_cmp::{CmpConfig, CmpSystem, CoreParams};

const LARGE: [usize; 4] = [0, 7, 56, 63];
const REFS: u64 = 800;

fn traces() -> Vec<Box<dyn TraceSource + Send>> {
    (0..64)
        .map(|i| {
            let bench = if LARGE.contains(&i) {
                Benchmark::Libquantum
            } else {
                Benchmark::SpecJbb
            };
            Box::new(SyntheticWorkload::new(bench, i, 7, REFS)) as Box<dyn TraceSource + Send>
        })
        .collect()
}

fn main() {
    println!("asymmetric CMP: 4 large corner cores (libquantum) + 60 small (SPECjbb)\n");
    println!(
        "{:<24}{:>12}{:>12}{:>12}",
        "network", "large IPC", "small IPC", "cycles"
    );
    let configs: Vec<(&str, heteronoc::noc::NetworkConfig, bool)> = vec![
        ("HomoNoC-XY", mesh_config(&Layout::Baseline), false),
        ("HeteroNoC-XY", mesh_config(&Layout::DiagonalBL), false),
        (
            "HeteroNoC-Table+XY",
            mesh_config_with_table(&Layout::DiagonalBL, &LARGE.map(RouterId)),
            true,
        ),
    ];
    for (name, net_cfg, expedited) in configs {
        let mut cfg = CmpConfig::paper_defaults(net_cfg);
        if expedited {
            cfg.expedited_nodes = LARGE.iter().map(|&n| NodeId(n)).collect();
        }
        let params: Vec<CoreParams> = (0..64)
            .map(|i| {
                if LARGE.contains(&i) {
                    CoreParams::OUT_OF_ORDER
                } else {
                    CoreParams::IN_ORDER
                }
            })
            .collect();
        let mut sys = CmpSystem::new(cfg, params, traces());
        sys.prewarm(traces());
        let cycles = sys.run(20_000_000);
        let ipcs = sys.ipcs();
        let large: f64 = LARGE.iter().map(|&i| ipcs[i]).sum::<f64>() / 4.0;
        let small: f64 = (0..64)
            .filter(|i| !LARGE.contains(i))
            .map(|i| ipcs[i])
            .sum::<f64>()
            / 60.0;
        println!("{name:<24}{large:>12.3}{small:>12.3}{cycles:>12}");
    }
    println!("\nTable routing steers large-core packets along the big diagonal routers");
    println!("(paper Fig. 14); full metrics: cargo run -p heteronoc-bench --bin fig14_asymmetric");
}
