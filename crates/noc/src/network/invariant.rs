//! Runtime invariant checking for the simulation engine (cargo feature
//! `verify`).
//!
//! Complements the static channel-dependency analysis in `heteronoc-verify`:
//! the CDG proof establishes that deadlock *cannot* occur for a
//! configuration; these checks assert, on the live engine state, that the
//! bookkeeping the proof relies on stays exact — every flit is conserved,
//! credits account for every buffer slot of every channel, and each VC
//! delivers a packet's flits in order. None of this code is compiled when
//! the `verify` feature is off.
//!
//! The accounting works because the event wheel is the only place state is
//! "in flight": for any channel, the upstream credit counter, the credits
//! and flits travelling in the wheel, and the downstream FIFO occupancy
//! must always sum to the downstream buffer depth.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use crate::router::OutputTarget;
use crate::types::{NodeId, PacketId, PortId, RouterId, VcId};

use super::{Event, Network, Upstream};

/// A broken engine invariant, naming the exact state that disagrees.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InvariantViolation {
    /// An input VC holds more flits than its buffer depth.
    BufferOverflow {
        /// Router owning the over-full input VC.
        router: RouterId,
        /// Input port of the VC.
        port: PortId,
        /// The VC index.
        vc: VcId,
        /// Buffered flit count.
        len: usize,
        /// Configured buffer depth.
        depth: usize,
    },
    /// Two flits of one packet sit in one VC FIFO out of sequence
    /// (wormhole switching must deliver a packet's flits in order).
    FifoOrder {
        /// Router owning the FIFO.
        router: RouterId,
        /// Input port of the FIFO.
        port: PortId,
        /// The VC index.
        vc: VcId,
        /// The packet whose flits are out of order.
        packet: PacketId,
        /// Sequence number of the earlier (closer to head) flit.
        prev_seq: u32,
        /// Sequence number of the later flit (must exceed `prev_seq`).
        seq: u32,
    },
    /// Credits + wheel events + downstream occupancy of a router-to-router
    /// channel do not sum to the downstream buffer depth. (Credit counters
    /// are unsigned, so an underflow also lands here.)
    CreditLeak {
        /// Upstream router of the channel.
        router: RouterId,
        /// Upstream output port.
        port: PortId,
        /// The VC index.
        vc: VcId,
        /// What the credit conservation sum came to.
        accounted: u32,
        /// The downstream buffer depth it must equal.
        depth: u32,
    },
    /// The same accounting failure on a node-to-router injection channel.
    NodeCreditLeak {
        /// The injecting node.
        node: NodeId,
        /// The VC index at the router's local input port.
        vc: VcId,
        /// What the credit conservation sum came to.
        accounted: u32,
        /// The buffer depth it must equal.
        depth: u32,
    },
    /// A flit references a packet the engine is not tracking.
    OrphanFlit {
        /// The unknown packet id.
        packet: PacketId,
    },
    /// Retired + resident flits of a tracked packet do not sum to what the
    /// packet should currently have in the engine (0 while still
    /// source-queued, its flit total otherwise).
    FlitLeak {
        /// The leaking packet.
        packet: PacketId,
        /// Retired + resident flits found.
        accounted: u32,
        /// What the sum must equal.
        expected: u32,
    },
    /// A router's incremental occupancy counter drifted from its buffers.
    OccupancyDrift {
        /// The drifting router.
        router: RouterId,
        /// Flits actually present in its input FIFOs.
        counted: u32,
        /// The incremental counter's value.
        cached: u32,
    },
    /// A router's per-input-port occupancy counter (the active-set
    /// engine's allocation-phase gate) drifted from that port's FIFOs.
    PortOccupancyDrift {
        /// The drifting router.
        router: RouterId,
        /// The input port whose counter drifted.
        port: PortId,
        /// Flits actually present in the port's FIFOs.
        counted: u32,
        /// The incremental counter's value.
        cached: u32,
    },
    /// A router holds buffered flits but reports itself quiescent: the
    /// active-set engine would never visit it again and the flits would
    /// wedge. The wake set must always cover every occupied router.
    AsleepWithFlits {
        /// The wrongly-sleeping router.
        router: RouterId,
        /// Its (non-zero) buffer occupancy.
        occupancy: u32,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::BufferOverflow {
                router,
                port,
                vc,
                len,
                depth,
            } => write!(
                f,
                "{router}.{port}.{vc} holds {len} flits, buffer depth is {depth}"
            ),
            InvariantViolation::FifoOrder {
                router,
                port,
                vc,
                packet,
                prev_seq,
                seq,
            } => write!(
                f,
                "{router}.{port}.{vc}: packet {packet} flit seq {seq} \
                 queued behind seq {prev_seq}"
            ),
            InvariantViolation::CreditLeak {
                router,
                port,
                vc,
                accounted,
                depth,
            } => write!(
                f,
                "channel {router}.{port}.{vc}: credits+in-flight+buffered = \
                 {accounted}, buffer depth is {depth}"
            ),
            InvariantViolation::NodeCreditLeak {
                node,
                vc,
                accounted,
                depth,
            } => write!(
                f,
                "injection channel {node}.{vc}: credits+in-flight+buffered = \
                 {accounted}, buffer depth is {depth}"
            ),
            InvariantViolation::OrphanFlit { packet } => {
                write!(f, "flit of untracked packet {packet} found in the engine")
            }
            InvariantViolation::FlitLeak {
                packet,
                accounted,
                expected,
            } => write!(
                f,
                "packet {packet}: retired+resident flits = {accounted}, \
                 expected {expected}"
            ),
            InvariantViolation::OccupancyDrift {
                router,
                counted,
                cached,
            } => write!(
                f,
                "{router}: occupancy counter says {cached}, buffers hold {counted}"
            ),
            InvariantViolation::PortOccupancyDrift {
                router,
                port,
                counted,
                cached,
            } => write!(
                f,
                "{router}.{port}: port-occupancy counter says {cached}, \
                 FIFOs hold {counted}"
            ),
            InvariantViolation::AsleepWithFlits { router, occupancy } => write!(
                f,
                "{router} holds {occupancy} buffered flits but is not in \
                 the scheduler's wake set"
            ),
        }
    }
}

impl Error for InvariantViolation {}

impl Network {
    /// Checks every engine invariant against the current cycle's state:
    /// buffer bounds, per-VC FIFO order, exact credit conservation on every
    /// router-to-router and node-to-router channel, per-router occupancy
    /// counters, and exact per-packet flit conservation.
    ///
    /// Intended to run between [`Network::step`] calls (the
    /// `sim::StrictInvariants` observer does this every cycle); the cost is
    /// a full scan of the engine state, so it exists only under the
    /// `verify` cargo feature.
    ///
    /// # Errors
    /// The first [`InvariantViolation`] found.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        // Resident flit count per packet, accumulated over FIFOs, the event
        // wheel and source send queues.
        let mut seen: HashMap<PacketId, u32> = HashMap::new();
        // In-flight wheel events, keyed per channel endpoint.
        let mut arrivals: HashMap<(usize, usize, usize), u32> = HashMap::new();
        let mut router_credits: HashMap<(usize, usize, usize), u32> = HashMap::new();
        let mut node_credits: HashMap<(usize, usize), u32> = HashMap::new();

        for slot in &self.wheel {
            for ev in slot {
                match ev {
                    Event::FlitArrive {
                        router,
                        port,
                        vc,
                        flit,
                    } => {
                        *arrivals
                            .entry((router.index(), port.index(), vc.index()))
                            .or_insert(0) += 1;
                        *seen.entry(flit.packet).or_insert(0) += 1;
                    }
                    Event::Credit { up, vc } => match up {
                        Upstream::Router(r, p) => {
                            *router_credits
                                .entry((r.index(), p.index(), vc.index()))
                                .or_insert(0) += 1;
                        }
                        Upstream::Node(n) => {
                            *node_credits.entry((n.index(), vc.index())).or_insert(0) += 1;
                        }
                    },
                    Event::Retire { flit } => {
                        *seen.entry(flit.packet).or_insert(0) += 1;
                    }
                    // Fault-mode link traffic is accounted through the
                    // replay buffers below: a `LinkArrive` is only a *copy*
                    // of a replay entry (and may be a stale go-back-N
                    // duplicate), and acks/nacks carry no flits or credits.
                    Event::LinkArrive { .. } | Event::Ack { .. } | Event::Nack { .. } => {}
                }
            }
        }

        // Fault mode: the canonical copy of a flit between leaving the
        // upstream buffer and landing downstream is its replay entry —
        // exactly while `seq >= rx_expected` (once accepted, the FIFO scan
        // below counts it and the entry merely awaits its ack).
        if let Some(fs) = self.faults.as_ref() {
            for lt in &fs.links {
                for e in &lt.replay {
                    if e.seq >= lt.rx_expected {
                        *seen.entry(e.flit.packet).or_insert(0) += 1;
                    }
                }
            }
        }

        // Buffer bounds, FIFO order and occupancy counters.
        for (r, router) in self.routers.iter().enumerate() {
            let depth = self.cfg.routers[r].buffer_depth;
            let mut counted = 0u32;
            for (p, port) in router.inputs.iter().enumerate() {
                let mut port_counted = 0u32;
                for (v, ivc) in port.iter().enumerate() {
                    if ivc.fifo.len() > depth {
                        return Err(InvariantViolation::BufferOverflow {
                            router: RouterId(r),
                            port: PortId(p),
                            vc: VcId(v),
                            len: ivc.fifo.len(),
                            depth,
                        });
                    }
                    counted += ivc.fifo.len() as u32;
                    port_counted += ivc.fifo.len() as u32;
                    let mut last: HashMap<PacketId, u32> = HashMap::new();
                    for flit in &ivc.fifo {
                        *seen.entry(flit.packet).or_insert(0) += 1;
                        if let Some(&prev) = last.get(&flit.packet) {
                            if flit.seq <= prev {
                                return Err(InvariantViolation::FifoOrder {
                                    router: RouterId(r),
                                    port: PortId(p),
                                    vc: VcId(v),
                                    packet: flit.packet,
                                    prev_seq: prev,
                                    seq: flit.seq,
                                });
                            }
                        }
                        last.insert(flit.packet, flit.seq);
                    }
                }
                if port_counted != router.port_occ[p] {
                    return Err(InvariantViolation::PortOccupancyDrift {
                        router: RouterId(r),
                        port: PortId(p),
                        counted: port_counted,
                        cached: router.port_occ[p],
                    });
                }
            }
            if counted != router.occupancy {
                return Err(InvariantViolation::OccupancyDrift {
                    router: RouterId(r),
                    counted,
                    cached: router.occupancy,
                });
            }
            // Wake-set coverage: every occupied router must be awake (in
            // either engine mode — the set is maintained in both so modes
            // stay switchable mid-run).
            if router.occupancy > 0
                && self.sched.activity(r) == crate::sched::RouterActivity::Quiescent
            {
                return Err(InvariantViolation::AsleepWithFlits {
                    router: RouterId(r),
                    occupancy: router.occupancy,
                });
            }
        }

        for node in &self.nodes {
            if let Some(s) = &node.sending {
                for flit in &s.flits {
                    *seen.entry(flit.packet).or_insert(0) += 1;
                }
            }
        }

        // Per-packet flit conservation. A packet still waiting in a source
        // queue has no flits anywhere; once fragmented, its retired and
        // resident flits must sum to its total at every cycle.
        let queued: HashSet<PacketId> = self
            .nodes
            .iter()
            .flat_map(|n| n.queue.iter().map(|p| p.id))
            .collect();
        for &pid in seen.keys() {
            if !self.in_flight.contains_key(&pid) {
                return Err(InvariantViolation::OrphanFlit { packet: pid });
            }
        }
        for (&pid, meta) in &self.in_flight {
            let resident = seen.get(&pid).copied().unwrap_or(0);
            let absorbed = self
                .faults
                .as_ref()
                .and_then(|f| f.absorbed.get(&pid).copied())
                .unwrap_or(0);
            let expected = if queued.contains(&pid) { 0 } else { meta.total };
            if resident + meta.received + absorbed != expected {
                return Err(InvariantViolation::FlitLeak {
                    packet: pid,
                    accounted: resident + meta.received + absorbed,
                    expected,
                });
            }
        }

        // Credit conservation on router-to-router channels: upstream
        // credits + credits returning in the wheel + flits on the link (in
        // the wheel) + flits buffered downstream == downstream depth.
        for (r, router) in self.routers.iter().enumerate() {
            for (p, out) in router.outputs.iter().enumerate() {
                let OutputTarget::Channel {
                    link,
                    dst,
                    dst_port,
                } = out.target
                else {
                    continue;
                };
                let depth = self.cfg.routers[dst.index()].buffer_depth as u32;
                for (v, ovc) in out.vcs.iter().enumerate() {
                    let buffered = self.routers[dst.index()].inputs[dst_port.index()][v]
                        .fifo
                        .len() as u32;
                    // Fault mode replaces wheel arrivals with the link's
                    // in-transit count: a flit holds its downstream slot
                    // from the credit decrement until it is accepted, no
                    // matter how many retransmissions that takes.
                    let in_transit = self
                        .faults
                        .as_ref()
                        .map_or(0, |f| f.links[link.index()].in_transit[v]);
                    let accounted = ovc.credits
                        + router_credits.get(&(r, p, v)).copied().unwrap_or(0)
                        + arrivals
                            .get(&(dst.index(), dst_port.index(), v))
                            .copied()
                            .unwrap_or(0)
                        + in_transit
                        + buffered;
                    if accounted != depth {
                        return Err(InvariantViolation::CreditLeak {
                            router: RouterId(r),
                            port: PortId(p),
                            vc: VcId(v),
                            accounted,
                            depth,
                        });
                    }
                }
            }
        }

        // The same conservation on node-to-router injection channels.
        for (n, node) in self.nodes.iter().enumerate() {
            let depth = self.cfg.routers[node.router.index()].buffer_depth as u32;
            for (v, nvc) in node.vcs.iter().enumerate() {
                let buffered = self.routers[node.router.index()].inputs[node.port.index()][v]
                    .fifo
                    .len() as u32;
                let accounted = nvc.credits
                    + node_credits.get(&(n, v)).copied().unwrap_or(0)
                    + arrivals
                        .get(&(node.router.index(), node.port.index(), v))
                        .copied()
                        .unwrap_or(0)
                    + buffered;
                if accounted != depth {
                    return Err(InvariantViolation::NodeCreditLeak {
                        node: NodeId(n),
                        vc: VcId(v),
                        accounted,
                        depth,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::packet::{Flit, Packet, PacketClass};
    use crate::types::{Bits, NodeId};

    fn fresh() -> Network {
        Network::new(NetworkConfig::paper_baseline()).unwrap()
    }

    /// Drives `net` for `cycles` with uniform traffic at roughly 5%
    /// injection (deterministic pattern, no RNG needed).
    fn load(net: &mut Network, cycles: usize) {
        let n = net.graph().num_nodes();
        for c in 0..cycles {
            if c % 4 == 0 {
                for node in 0..n {
                    let dst = (node + 1 + c / 4) % n;
                    if dst != node {
                        net.enqueue(NodeId(node), NodeId(dst), Bits(1024), PacketClass::Data, 0);
                    }
                }
            }
            net.step();
        }
    }

    #[test]
    fn fresh_network_checks_clean() {
        fresh().check_invariants().unwrap();
    }

    #[test]
    fn loaded_network_checks_clean_every_cycle() {
        let mut net = fresh();
        let n = net.graph().num_nodes();
        for c in 0..400 {
            if c % 4 == 0 {
                for node in 0..n {
                    let dst = (node + 7) % n;
                    net.enqueue(NodeId(node), NodeId(dst), Bits(1024), PacketClass::Data, 0);
                }
            }
            net.step();
            net.check_invariants()
                .unwrap_or_else(|e| panic!("cycle {c}: {e}"));
        }
    }

    #[test]
    fn stolen_router_credit_is_detected() {
        let mut net = fresh();
        let (r, p) = net
            .routers
            .iter()
            .enumerate()
            .find_map(|(r, rt)| {
                rt.outputs.iter().enumerate().find_map(|(p, o)| {
                    matches!(o.target, OutputTarget::Channel { .. }).then_some((r, p))
                })
            })
            .expect("mesh has at least one channel");
        net.routers[r].outputs[p].vcs[0].credits -= 1;
        assert!(matches!(
            net.check_invariants(),
            Err(InvariantViolation::CreditLeak { .. })
        ));
    }

    #[test]
    fn stolen_node_credit_is_detected() {
        let mut net = fresh();
        net.nodes[3].vcs[0].credits -= 1;
        assert!(matches!(
            net.check_invariants(),
            Err(InvariantViolation::NodeCreditLeak { .. })
        ));
    }

    #[test]
    fn orphan_flit_is_detected() {
        let mut net = fresh();
        let ghost = Packet {
            id: crate::types::PacketId(usize::MAX),
            src: NodeId(0),
            dst: NodeId(1),
            size: Bits(192),
            class: PacketClass::Data,
            tag: 0,
            birth: 0,
        };
        let flit = Flit::fragment(&ghost, Bits(192), 0).remove(0);
        net.routers[0].inputs[0][0].fifo.push_back(flit);
        net.routers[0].occupancy += 1;
        net.routers[0].port_occ[0] += 1;
        net.sched.wake(0, crate::sched::WakeReason::FlitArrive);
        assert!(matches!(
            net.check_invariants(),
            Err(InvariantViolation::OrphanFlit { .. })
        ));
    }

    #[test]
    fn occupancy_drift_is_detected() {
        let mut net = fresh();
        net.routers[5].occupancy += 1;
        assert!(matches!(
            net.check_invariants(),
            Err(InvariantViolation::OccupancyDrift { .. })
        ));
    }

    #[test]
    fn port_occupancy_drift_is_detected() {
        let mut net = fresh();
        net.routers[5].port_occ[2] += 1;
        assert!(matches!(
            net.check_invariants(),
            Err(InvariantViolation::PortOccupancyDrift { .. })
        ));
    }

    #[test]
    fn asleep_router_with_buffered_flits_is_detected() {
        let mut net = fresh();
        load(&mut net, 40);
        let r = net
            .routers
            .iter()
            .position(|rt| rt.occupancy > 0)
            .expect("a 40-cycle loaded run leaves flits buffered");
        net.sched.sleep(r);
        let list = net.sched.begin_cycle();
        net.sched
            .end_cycle(list.into_iter().filter(|&x| x != r).collect());
        assert!(matches!(
            net.check_invariants(),
            Err(InvariantViolation::AsleepWithFlits { .. })
        ));
    }

    #[test]
    fn duplicated_flit_is_detected() {
        let mut net = fresh();
        load(&mut net, 40);
        // Find a buffered flit and queue a copy behind it: breaks FIFO
        // order (same seq) and flit conservation at once.
        let found = net.routers.iter().enumerate().find_map(|(r, rt)| {
            rt.inputs.iter().enumerate().find_map(|(p, port)| {
                port.iter()
                    .enumerate()
                    .find_map(|(v, ivc)| ivc.fifo.front().copied().map(|f| (r, p, v, f)))
            })
        });
        let (r, p, v, f) = found.expect("a 40-cycle loaded run leaves flits buffered");
        net.routers[r].inputs[p][v].fifo.push_back(f);
        net.routers[r].occupancy += 1;
        assert!(matches!(
            net.check_invariants(),
            Err(InvariantViolation::FifoOrder { .. })
        ));
    }

    #[test]
    fn invariants_hold_under_transient_faults() {
        use crate::fault::FaultPlan;
        let cfg = NetworkConfig::paper_baseline();
        let mut net = Network::with_faults(cfg, FaultPlan::transient(3e-4, 9)).unwrap();
        let n = net.graph().num_nodes();
        for c in 0..600 {
            if c % 4 == 0 {
                for node in 0..n {
                    let dst = (node + 7) % n;
                    net.enqueue(NodeId(node), NodeId(dst), Bits(1024), PacketClass::Data, 0);
                }
            }
            net.step();
            net.check_invariants()
                .unwrap_or_else(|e| panic!("cycle {c}: {e}"));
        }
        assert!(
            net.fault_counters().flits_corrupted > 0,
            "the run must actually exercise retransmission"
        );
    }

    #[test]
    fn invariants_hold_across_hard_fault_and_reroute() {
        use crate::fault::{FaultKind, FaultPlan, HardFault};
        use crate::routing::degraded::degraded_routing;
        use crate::routing::RoutingKind;
        use crate::types::LinkId;

        let cfg = NetworkConfig::paper_baseline();
        let probe = Network::new(cfg.clone()).unwrap();
        let link = probe
            .graph()
            .links()
            .iter()
            .enumerate()
            .find(|(_, l)| (l.src.index(), l.dst.index()) == (27, 28))
            .map(|(i, _)| LinkId(i))
            .expect("8x8 mesh has the 27-28 link");
        let mut plan = FaultPlan::transient(1e-4, 5);
        plan.hard.push(HardFault {
            cycle: 100,
            kind: FaultKind::Link(link),
        });
        let mut net = Network::with_faults(cfg, plan).unwrap();
        let n = net.graph().num_nodes();
        for c in 0..800 {
            if c % 4 == 0 && c < 400 {
                for node in 0..n {
                    let dst = (node + 9) % n;
                    net.enqueue(NodeId(node), NodeId(dst), Bits(1024), PacketClass::Data, 0);
                }
            }
            net.step();
            if net.take_routing_stale() {
                let d = degraded_routing(net.graph(), net.dead_links(), net.dead_routers());
                assert!(d.fully_connected());
                net.install_routing(RoutingKind::FullTable(d.table));
            }
            net.check_invariants()
                .unwrap_or_else(|e| panic!("cycle {c}: {e}"));
        }
        assert_eq!(net.fault_counters().links_dead, 2);
    }

    #[test]
    fn invariants_hold_through_router_kill_with_recovery() {
        use crate::fault::{FaultKind, FaultPlan, HardFault, RecoveryPolicy};
        use crate::routing::degraded::degraded_routing;
        use crate::routing::RoutingKind;
        use crate::types::RouterId;

        // A mid-burst router kill with end-to-end recovery enabled: zombie
        // packets frozen in the dead router, scrubbed wormhole fragments,
        // and reinjected copies must all keep the conservation ledgers
        // exact, every cycle.
        let cfg = NetworkConfig::paper_baseline();
        let mut plan = FaultPlan::default();
        plan.hard.push(HardFault {
            cycle: 60,
            kind: FaultKind::Router(RouterId(27)),
        });
        plan.recovery = Some(RecoveryPolicy::default());
        let mut net = Network::with_faults(cfg, plan).unwrap();
        let n = net.graph().num_nodes();
        for c in 0..3_000u64 {
            if c % 4 == 0 && c < 200 {
                for node in 0..n {
                    let dst = (node + 9) % n;
                    net.enqueue(NodeId(node), NodeId(dst), Bits(1024), PacketClass::Data, 0);
                }
            }
            net.step();
            if net.take_routing_stale() {
                let d = degraded_routing(net.graph(), net.dead_links(), net.dead_routers());
                net.install_routing(RoutingKind::FullTable(d.table));
            }
            net.check_invariants()
                .unwrap_or_else(|e| panic!("cycle {c}: {e}"));
            if net.in_flight() == 0 && net.recovery_pending() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0, "recovery must drain");
        assert_eq!(net.recovery_pending(), 0, "retention must drain");
        assert!(net.recovery_counters().reinjections > 0);
    }

    #[test]
    fn violation_display_names_the_state() {
        let v = InvariantViolation::CreditLeak {
            router: RouterId(3),
            port: PortId(1),
            vc: VcId(0),
            accounted: 4,
            depth: 5,
        };
        let s = v.to_string();
        assert!(s.contains("r3"), "{s}");
        assert!(s.contains('4') && s.contains('5'), "{s}");
    }
}
