//! The cycle-accurate network simulation engine.
//!
//! [`Network`] owns the elaborated topology, all router and source-queue
//! state, and advances in lock-step cycles via [`Network::step`]. Clients
//! inject packets with [`Network::enqueue`] and collect completions with
//! [`Network::drain_delivered`]; the open-loop synthetic-traffic driver in
//! [`crate::sim`] and the CMP simulator are both built on this interface.
//!
//! # Timing model
//!
//! Two-stage router pipeline plus one cycle of link traversal:
//!
//! * cycle *t*: flit written into an input VC (buffer write; head flits do
//!   route computation and bid for VC allocation the same cycle),
//! * cycle *t+1* (earliest): two-phase switch allocation and switch
//!   traversal,
//! * cycle *t+2*: link traversal; the flit is written into the downstream
//!   buffer at *t+3* relative to its own buffer write... measured from the
//!   winning SA cycle `c`, the downstream buffer write happens at `c+2` and
//!   the credit returns upstream at `c+1`.
//!
//! A contention-free hop therefore costs 3 cycles buffer-to-buffer, which is
//! the reference used by [`Network::ideal_latency`].

mod fault_state;
pub mod snapshot;

#[cfg(feature = "verify")]
pub mod invariant;
#[cfg(feature = "verify")]
pub use invariant::InvariantViolation;

use std::collections::{HashMap, VecDeque};

use rand::Rng;

use crate::config::{lanes, NetworkConfig};
use crate::error::ConfigError;
use crate::fault::{
    DropReason, DroppedPacket, FaultCounters, FaultKind, FaultPlan, RecoveryCounters,
    UnrecoverableFault,
};
use crate::metrics::{EpochRecorder, EpochSample};
use crate::packet::{Flit, Packet, PacketClass};
use crate::profile::{maybe_now, ProfileReport, Stage, StageProfiler};
use crate::router::arbiter::RrArbiter;
use crate::router::{InputVc, OutputPort, OutputTarget, OutputVc, RouterState};
use crate::routing::{RouteChoice, RoutingKind, VcClass};
use crate::sched::{EngineMode, RouterActivity, SchedReport, Scheduler, WakeReason};
use crate::stats::{NetStats, PacketRecord};
use crate::topology::{PortKind, TopologyGraph};
use crate::trace::{FaultUnit, TraceEvent, TraceSink};
use crate::types::{Bits, Cycle, LinkId, NodeId, PacketId, PortId, RouterId, VcId};

use fault_state::{E2eState, FarEvent, FaultState, ReplayEntry, Retained};

/// Point-in-time liveness snapshot (see [`Network::diagnostics`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// Packets queued or flying.
    pub in_flight: usize,
    /// Packets still waiting in source queues.
    pub source_queued: usize,
    /// Flits resident in router buffers.
    pub buffered_flits: u32,
    /// Age (cycles) of the oldest unfinished packet.
    pub oldest_packet_age: Cycle,
    /// Longest time any head flit has been waiting without moving —
    /// a growing value across successive snapshots indicates a stall.
    pub max_head_wait: u32,
}

/// Diagnostic produced when a run stops making progress (see
/// [`Network::stall_report`] and the watchdog in [`crate::sim`]): the oldest
/// unfinished packets, where each one is stuck, and the input VCs whose head
/// flits have waited longest without moving.
#[derive(Clone, Debug)]
pub struct StallReport {
    /// Cycle the report was taken.
    pub cycle: Cycle,
    /// Unfinished packets at that point.
    pub in_flight: usize,
    /// The oldest unfinished packets (up to 8), oldest first.
    pub stuck: Vec<StuckPacket>,
    /// Input VCs with the longest-waiting head flits (up to 8).
    pub blocked: Vec<BlockedChannel>,
}

/// One stuck packet in a [`StallReport`].
#[derive(Clone, Debug)]
pub struct StuckPacket {
    /// The packet.
    pub packet: PacketId,
    /// Source and destination nodes.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycles since the packet was enqueued.
    pub age: Cycle,
    /// Where its flits sit, e.g. `"r3.p1.v0"` or `"queued at n5"`.
    pub location: String,
}

/// One blocked input VC in a [`StallReport`].
#[derive(Clone, Copy, Debug)]
pub struct BlockedChannel {
    /// Router owning the input VC.
    pub router: RouterId,
    /// The input port.
    pub port: PortId,
    /// The VC index.
    pub vc: VcId,
    /// Cycles its head flit has waited without moving.
    pub head_wait: u32,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "no progress at cycle {}: {} packets in flight",
            self.cycle, self.in_flight
        )?;
        for s in &self.stuck {
            writeln!(
                f,
                "  {} ({} -> {}) stuck for {} cycles at {}",
                s.packet, s.src, s.dst, s.age, s.location
            )?;
        }
        for b in &self.blocked {
            writeln!(
                f,
                "  {}.{}.{} head blocked for {} cycles",
                b.router, b.port, b.vc, b.head_wait
            )?;
        }
        Ok(())
    }
}

/// A packet that completed delivery (tail flit ejected).
#[derive(Clone, Copy, Debug)]
pub struct Delivered {
    /// The original packet (including the client `tag`).
    pub packet: Packet,
    /// Cycle the head flit left the source node.
    pub inject: Cycle,
    /// Cycle the tail flit was ejected at the destination.
    pub retire: Cycle,
}

#[derive(Clone, Copy, Debug)]
enum Upstream {
    Router(RouterId, PortId),
    Node(NodeId),
}

#[derive(Clone, Debug)]
enum Event {
    FlitArrive {
        router: RouterId,
        port: PortId,
        vc: VcId,
        flit: Flit,
    },
    Credit {
        up: Upstream,
        vc: VcId,
    },
    Retire {
        flit: Flit,
    },
    /// Fault mode only: a flit transmission reaching the far end of a link.
    /// Unlike `FlitArrive` it may be corrupted (detected by the modeled CRC)
    /// or a stale go-back-N copy, and is acknowledged either way.
    LinkArrive {
        link: LinkId,
        seq: u64,
        corrupted: bool,
        router: RouterId,
        port: PortId,
        vc: VcId,
        flit: Flit,
    },
    /// Fault mode only: receiver accepted sequence `seq` on `link`.
    Ack {
        link: LinkId,
        seq: u64,
    },
    /// Fault mode only: receiver saw a corrupted flit with sequence `seq`.
    Nack {
        link: LinkId,
        seq: u64,
    },
}

#[derive(Clone, Debug)]
struct PacketMeta {
    packet: Packet,
    inject: Cycle,
    received: u32,
    total: u32,
    measured: bool,
}

#[derive(Clone, Debug)]
struct Sending {
    vc: VcId,
    flits: VecDeque<Flit>,
}

#[derive(Clone, Debug)]
struct NodeState {
    router: RouterId,
    port: PortId,
    lanes: usize,
    queue: VecDeque<Packet>,
    sending: Option<Sending>,
    /// Node-side view of the router's local-input VCs.
    vcs: Vec<OutputVc>,
    rr_vc: RrArbiter,
}

/// Maximum event-schedule horizon (flit arrivals at +2 are the farthest).
const WHEEL: usize = 3;

/// The simulated network.
pub struct Network {
    cfg: NetworkConfig,
    graph: TopologyGraph,
    link_lanes: Vec<usize>,
    link_wide: Vec<bool>,
    routers: Vec<RouterState>,
    nodes: Vec<NodeState>,
    now: Cycle,
    wheel: [Vec<Event>; WHEEL],
    in_flight: HashMap<PacketId, PacketMeta>,
    next_packet: usize,
    measuring: bool,
    record_packets: bool,
    stats: NetStats,
    delivered: Vec<Delivered>,
    /// Fault-injection state; `None` keeps the engine on its exact
    /// fault-free fast path (no per-cycle overhead, identical schedules).
    faults: Option<Box<FaultState>>,
    /// Flit-level event sink; `None` means each emission site costs one
    /// `is_some()` branch and builds no event value.
    tracer: Option<Box<dyn TraceSink>>,
    /// Epoch time-series recorder; `None` means no per-cycle sampling work.
    epochs: Option<Box<EpochRecorder>>,
    /// Per-stage wall-time profiler; `None` means [`std::time::Instant`]
    /// is never consulted on the hot path.
    profiler: Option<Box<StageProfiler>>,
    /// The active-set scheduler (see [`crate::sched`]): wake-set
    /// membership, engine mode, and skip counters. Derived state — never
    /// serialized, rebuilt from buffer occupancy on checkpoint restore.
    sched: Scheduler,
    // Scratch buffers reused across cycles to avoid per-cycle allocation.
    scratch_winners: Vec<(PortId, VcId)>,
    scratch_events: Vec<Event>,
    scratch_primary: Vec<Option<(usize, PortId)>>,
    scratch_pair: Vec<bool>,
    scratch_alt: Vec<Option<usize>>,
    scratch_port_sent: Vec<u8>,
    /// Spare wheel-slot storage so the per-cycle `mem::take` of the due
    /// slot does not discard its capacity.
    wheel_spare: Vec<Event>,
}

impl Network {
    /// Builds a network from `cfg`.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] when the configuration fails
    /// [`NetworkConfig::validate`].
    pub fn new(cfg: NetworkConfig) -> Result<Self, ConfigError> {
        let graph = cfg.build_graph();
        cfg.validate(&graph)?;
        let widths = cfg.link_widths.resolve(&graph);
        let link_lanes: Vec<usize> = widths.iter().map(|w| lanes(*w, cfg.flit_width)).collect();
        let link_wide: Vec<bool> = link_lanes.iter().map(|&l| l > 1).collect();

        let mut routers = Vec::with_capacity(graph.num_routers());
        let mut slots = Vec::with_capacity(graph.num_routers());
        for (r, rd) in graph.routers().iter().enumerate() {
            let rc = cfg.routers[r];
            let local_lanes = lanes(cfg.local_width(r), cfg.flit_width);
            let inputs: Vec<Vec<InputVc>> = rd
                .ports
                .iter()
                .map(|_| (0..rc.vcs_per_port).map(|_| InputVc::default()).collect())
                .collect();
            let outputs: Vec<OutputPort> = rd
                .ports
                .iter()
                .map(|p| match p.kind {
                    PortKind::Local { node } => OutputPort {
                        target: OutputTarget::Sink { node },
                        lanes: local_lanes,
                        vcs: Vec::new(),
                        va_arb: RrArbiter::new(),
                        sa_primary: RrArbiter::new(),
                        sa_secondary: RrArbiter::new(),
                    },
                    PortKind::Link { to, out, .. } => {
                        let down = cfg.routers[to.index()];
                        let dl = graph.links()[out.index()];
                        OutputPort {
                            target: OutputTarget::Channel {
                                link: out,
                                dst: to,
                                dst_port: dl.dst_port,
                            },
                            lanes: link_lanes[out.index()],
                            vcs: vec![
                                OutputVc {
                                    owner: None,
                                    credits: down.buffer_depth as u32,
                                };
                                down.vcs_per_port
                            ],
                            va_arb: RrArbiter::new(),
                            sa_primary: RrArbiter::new(),
                            sa_secondary: RrArbiter::new(),
                        }
                    }
                })
                .collect();
            let capacity = (rd.ports.len() * rc.vcs_per_port * rc.buffer_depth) as u32;
            slots.push(capacity);
            routers.push(RouterState {
                inputs,
                outputs,
                sa_stage1: rd.ports.iter().map(|_| RrArbiter::new()).collect(),
                occupancy: 0,
                port_occ: vec![0; rd.ports.len()],
                capacity,
                busy_vcs: 0,
                total_vcs: (rd.ports.len() * rc.vcs_per_port) as u32,
            });
        }

        let nodes: Vec<NodeState> = graph
            .nodes()
            .iter()
            .map(|at| {
                let r = at.router.index();
                NodeState {
                    router: at.router,
                    port: at.port,
                    lanes: lanes(cfg.local_width(r), cfg.flit_width),
                    queue: VecDeque::new(),
                    sending: None,
                    vcs: vec![
                        OutputVc {
                            owner: None,
                            credits: cfg.routers[r].buffer_depth as u32,
                        };
                        cfg.routers[r].vcs_per_port
                    ],
                    rr_vc: RrArbiter::new(),
                }
            })
            .collect();

        let vc_counts: Vec<u32> = routers.iter().map(|r| r.total_vcs).collect();
        let stats = NetStats::new(graph.num_routers(), graph.num_links(), slots, vc_counts);
        let sched = Scheduler::new(routers.len());
        Ok(Self {
            cfg,
            graph,
            link_lanes,
            link_wide,
            routers,
            nodes,
            now: 0,
            wheel: [Vec::new(), Vec::new(), Vec::new()],
            in_flight: HashMap::new(),
            next_packet: 0,
            measuring: false,
            record_packets: false,
            stats,
            delivered: Vec::new(),
            faults: None,
            tracer: None,
            epochs: None,
            profiler: None,
            sched,
            scratch_winners: Vec::with_capacity(4),
            scratch_events: Vec::with_capacity(4),
            scratch_primary: Vec::new(),
            scratch_pair: Vec::new(),
            scratch_alt: Vec::new(),
            scratch_port_sent: Vec::new(),
            wheel_spare: Vec::new(),
        })
    }

    /// Builds a network with the fault-injection layer attached.
    ///
    /// A benign plan (zero error rates, no hard faults) produces runs
    /// cycle-identical to [`Network::new`]: the fault layer draws from its
    /// own RNG and only perturbs schedules when a fault actually fires.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] when the configuration is invalid or the
    /// plan references links/routers outside the topology (or has an
    /// out-of-range probability / zero retry limit).
    pub fn with_faults(cfg: NetworkConfig, plan: FaultPlan) -> Result<Self, ConfigError> {
        let mut net = Self::new(cfg)?;
        plan.validate(net.graph.num_links(), net.graph.num_routers())?;
        let vcs: Vec<usize> = (0..net.graph.num_routers())
            .map(|r| net.cfg.routers[r].vcs_per_port)
            .collect();
        net.faults = Some(Box::new(FaultState::new(
            plan,
            &net.graph,
            net.cfg.flit_width,
            &vcs,
        )));
        Ok(net)
    }

    /// Current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The elaborated topology.
    pub fn graph(&self) -> &TopologyGraph {
        &self.graph
    }

    /// The configuration the network was built from.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Which links are wide (more than one flit lane).
    pub fn wide_links(&self) -> &[bool] {
        &self.link_wide
    }

    /// Lanes of each link.
    pub fn link_lanes(&self) -> &[usize] {
        &self.link_lanes
    }

    /// Starts/stops statistics accumulation (packets born while measuring
    /// are latency-tracked; cycle counters only advance while measuring).
    pub fn set_measuring(&mut self, on: bool) {
        self.measuring = on;
    }

    /// Enables per-packet [`PacketRecord`]s in [`NetStats::records`].
    pub fn set_record_packets(&mut self, on: bool) {
        self.record_packets = on;
    }

    /// Selects how [`Network::step`] walks the network (see
    /// [`EngineMode`]). Both modes are byte-identical in every observable
    /// output; [`EngineMode::PollAll`] exists as the reference the
    /// active-set engine is verified (and benchmarked) against.
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.sched.set_mode(mode);
    }

    /// The engine mode currently in effect.
    pub fn engine_mode(&self) -> EngineMode {
        self.sched.mode()
    }

    /// Active-set scheduler statistics accumulated so far (cycles skipped,
    /// router visits avoided, wake-set size histogram). Available without
    /// enabling profiling; also embedded in [`ProfileReport::sched`].
    pub fn sched_report(&self) -> SchedReport {
        self.sched.report()
    }

    /// True when the network can make no progress on its own: no fault
    /// layer (whose far-event timers could fire), no scheduled events in
    /// the wheel, no awake router, and every source node idle. A quiescent
    /// fault-free network necessarily has nothing in flight, so stepping
    /// it runs the whole pipeline to no effect — the basis for the
    /// active-set engine's quiet-gap fast-forwarding.
    pub fn quiescent(&self) -> bool {
        self.faults.is_none()
            && self.sched.wake_set_empty()
            && self.wheel.iter().all(Vec::is_empty)
            && self
                .nodes
                .iter()
                .all(|n| n.sending.is_none() && n.queue.is_empty())
            && self.in_flight.is_empty()
    }

    /// Advances one globally-quiet cycle without running the pipeline.
    /// Byte-identical to [`Network::step`] on a [`Network::quiescent`]
    /// network: the only observable effects of a full step in that state
    /// are the cycle counters, epoch bookkeeping (which accumulates zeros)
    /// and the profiler step count — all replicated here.
    pub(crate) fn idle_step(&mut self) {
        debug_assert!(self.quiescent(), "idle_step on a non-quiescent network");
        if self.measuring {
            self.stats.cycles += 1;
        }
        if let Some(ep) = self.epochs.as_deref_mut() {
            ep.maybe_close(self.now);
        }
        if let Some(p) = self.profiler.as_deref_mut() {
            p.note_step();
        }
        self.sched.note_idle_cycle(self.routers.len());
        self.now += 1;
    }

    /// A router's self-reported activity state: [`RouterActivity::Active`]
    /// while it holds buffered flits (it is in the scheduler's wake set),
    /// [`RouterActivity::Quiescent`] otherwise. This is the query that
    /// replaced polling: the active-set engine derives it from wake
    /// notifications instead of inspecting every buffer every cycle.
    pub fn router_activity(&self, router: RouterId) -> RouterActivity {
        self.sched.activity(router.index())
    }

    /// True when a bulk quiet-gap jump would be observationally identical
    /// to walking the gap cycle by cycle: no epoch recorder (whose
    /// boundaries must close on exact cycles) and no trace sink attached.
    pub(crate) fn can_skip_quiet(&self) -> bool {
        self.epochs.is_none() && self.tracer.is_none()
    }

    /// Fast-forwards `delta` globally-quiet cycles in one jump. Callers
    /// must ensure the network is [`Network::quiescent`] and stays that
    /// way for the whole gap (no injection can fire, no epoch boundary or
    /// trace output falls inside it — the driver in [`crate::sim`] checks
    /// all of this and also replays the per-cycle RNG draws).
    pub(crate) fn skip_quiet(&mut self, delta: Cycle) {
        debug_assert!(self.quiescent(), "skip_quiet on a non-quiescent network");
        debug_assert!(self.epochs.is_none() && self.tracer.is_none());
        if self.measuring {
            self.stats.cycles += delta;
        }
        if let Some(p) = self.profiler.as_deref_mut() {
            p.note_steps(delta);
        }
        self.sched.note_jump(delta, self.routers.len());
        self.now += delta;
    }

    /// Installs a flit-level [`TraceSink`]; every lifecycle event from the
    /// next [`Network::step`] on is delivered to it. Tracing observes the
    /// engine without touching schedules or RNG draws, so a traced run is
    /// cycle-identical to an untraced one.
    pub(crate) fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer = Some(sink);
    }

    /// Finalizes and drops the installed trace sink (calls
    /// [`TraceSink::finish`] exactly once). No-op without a sink.
    pub(crate) fn finish_trace(&mut self) {
        if let Some(mut sink) = self.tracer.take() {
            sink.finish();
        }
    }

    /// Starts epoch time-series sampling: every `every` cycles the network
    /// closes an [`EpochSample`] of buffer occupancy, link utilization,
    /// injection/ejection counts and latency percentiles. Sampling runs
    /// from the next cycle regardless of the measurement window.
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub(crate) fn enable_epochs(&mut self, every: Cycle) {
        let caps = self.routers.iter().map(|r| u64::from(r.capacity)).collect();
        let vcs = self
            .routers
            .iter()
            .map(|r| u64::from(r.total_vcs))
            .collect();
        let lanes = self.link_lanes.iter().map(|&l| l as u64).collect();
        self.epochs = Some(Box::new(EpochRecorder::new(every, caps, vcs, lanes)));
    }

    /// Stops epoch sampling, closes the partial epoch in progress (if it
    /// covers at least one cycle) and returns all samples. Empty when
    /// sampling was never enabled.
    pub(crate) fn take_epochs(&mut self) -> Vec<EpochSample> {
        match self.epochs.take() {
            Some(mut rec) => {
                rec.finish(self.now);
                rec.into_samples()
            }
            None => Vec::new(),
        }
    }

    /// Starts accumulating per-pipeline-stage wall time (see
    /// [`crate::profile`]). Idempotent; the existing counters are kept.
    pub(crate) fn enable_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::new(StageProfiler::new()));
        }
    }

    /// Stops profiling and returns the accumulated breakdown (with the
    /// scheduler counters embedded), or `None` when profiling was never
    /// enabled.
    pub(crate) fn take_profile(&mut self) -> Option<ProfileReport> {
        self.profiler.take().map(|p| {
            let mut report = p.report();
            report.sched = self.sched.report();
            report
        })
    }

    /// Delivers `ev` to the installed sink. Call sites guard with
    /// `self.tracer.is_some()` so the event value is never built when
    /// tracing is off.
    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.event(&ev);
        }
    }

    /// Starts a stage timer iff profiling is on (no `Instant::now` otherwise).
    #[inline]
    fn prof_start(&self) -> Option<std::time::Instant> {
        maybe_now(self.profiler.is_some())
    }

    /// Charges the time since `since` to `stage` and restarts the timer.
    #[inline]
    fn prof_lap(
        &mut self,
        since: Option<std::time::Instant>,
        stage: Stage,
    ) -> Option<std::time::Instant> {
        let t0 = since?;
        let now = std::time::Instant::now();
        if let Some(p) = self.profiler.as_deref_mut() {
            p.add(stage, now.duration_since(t0));
        }
        Some(now)
    }

    /// Collected statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// End-to-end recovery state, if the plan enables it.
    #[inline]
    fn e2e(&self) -> Option<&E2eState> {
        self.faults.as_ref().and_then(|f| f.e2e.as_deref())
    }

    /// True when `id` was abandoned to dead equipment: its frozen flits keep
    /// the tracking entry alive, but the packet can make no progress and a
    /// fresh copy is (or was) the source's responsibility.
    #[inline]
    fn is_zombie(&self, id: PacketId) -> bool {
        self.e2e()
            .is_some_and(|e| !e.zombies.is_empty() && e.zombies.contains(&id))
    }

    /// Packets currently queued or flying. Packets abandoned to dead
    /// equipment under end-to-end recovery are excluded: they can never
    /// finish and their fate is accounted through the recovery layer.
    pub fn in_flight(&self) -> usize {
        let zombies = self.e2e().map_or(0, |e| e.zombies.len());
        self.in_flight.len() - zombies
    }

    /// Packets retained at their sources awaiting an end-to-end ack (zero
    /// without recovery). A run has fully settled only when both this and
    /// [`Network::in_flight`] reach zero.
    pub fn recovery_pending(&self) -> usize {
        self.e2e().map_or(0, E2eState::pending)
    }

    /// End-to-end recovery counters (all zero without recovery).
    pub fn recovery_counters(&self) -> RecoveryCounters {
        self.e2e().map(|e| e.counters).unwrap_or_default()
    }

    /// Length of `node`'s source queue (packets not yet fully injected).
    pub fn source_queue_len(&self, node: NodeId) -> usize {
        let n = &self.nodes[node.index()];
        n.queue.len() + usize::from(n.sending.is_some())
    }

    /// Takes all completions since the previous call.
    pub fn drain_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Takes all packets dropped by the fault layer since the previous call
    /// (unreachable destinations, dead endpoints). Empty without faults.
    pub fn drain_dropped(&mut self) -> Vec<DroppedPacket> {
        self.faults
            .as_mut()
            .map_or_else(Vec::new, |f| std::mem::take(&mut f.dropped))
    }

    /// The fault plan this network runs under, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Fault-campaign counters (all zero without faults).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.as_ref().map(|f| f.counters).unwrap_or_default()
    }

    /// The first unrecoverable fault hit, if any. Once set, the affected
    /// link has given up retrying and the run should be aborted.
    pub fn fault_error(&self) -> Option<UnrecoverableFault> {
        self.faults.as_ref().and_then(|f| f.error)
    }

    /// Links killed by hard faults so far (both directions of each failed
    /// physical channel).
    pub fn dead_links(&self) -> &[LinkId] {
        self.faults.as_ref().map_or(&[], |f| &f.dead_links)
    }

    /// Routers killed by hard faults so far.
    pub fn dead_routers(&self) -> &[RouterId] {
        self.faults.as_ref().map_or(&[], |f| &f.dead_routers)
    }

    /// True once a hard fault has invalidated the installed routing;
    /// reading it clears the flag. Clients regenerate a table around
    /// [`Network::dead_links`] / [`Network::dead_routers`] (see
    /// [`crate::routing::degraded::degraded_routing`]), verify it, and
    /// hand it to [`Network::install_routing`].
    pub fn take_routing_stale(&mut self) -> bool {
        self.faults
            .as_mut()
            .is_some_and(|f| std::mem::take(&mut f.routing_stale))
    }

    /// Replaces the routing algorithm mid-run (graceful degradation).
    ///
    /// Heads that computed a route under the old algorithm but have not won
    /// a downstream VC yet are re-routed; granted packets finish on their
    /// old paths (wormhole grants cannot be revoked mid-packet). Packets
    /// being absorbed as unreachable get one more routing attempt if their
    /// head flit is still intact.
    pub fn install_routing(&mut self, routing: RoutingKind) {
        self.cfg.routing = routing;
        for router in &mut self.routers {
            for port in &mut router.inputs {
                for vc in port {
                    if vc.route.is_some() && vc.out_vc.is_none() {
                        vc.route = None;
                        vc.in_escape_grant = false;
                        vc.head_wait = 0;
                    }
                }
            }
        }
        let routers = &self.routers;
        if let Some(fs) = self.faults.as_mut() {
            // Only VCs whose head flit is still at the front can change
            // their mind; mid-absorb packets must finish draining.
            fs.absorbing.retain(|&(r, p, v)| {
                let front = routers[r.index()].inputs[p.index()][v.index()].fifo.front();
                !front.is_some_and(|f| f.kind.is_head())
            });
        }
    }

    /// Liveness/debug snapshot of the network state: useful as a watchdog
    /// when a client loop suspects a stall ("is the network making
    /// progress, and where is it stuck?").
    pub fn diagnostics(&self) -> Diagnostics {
        let queued: usize = self.nodes.iter().map(|n| n.queue.len()).sum();
        let occupancy: u32 = self.routers.iter().map(|r| r.occupancy).sum();
        let oldest_packet_age = self
            .in_flight
            .values()
            .filter(|m| !self.is_zombie(m.packet.id))
            .map(|m| self.now.saturating_sub(m.packet.birth))
            .max()
            .unwrap_or(0);
        let max_head_wait = self
            .routers
            .iter()
            .flat_map(|r| r.inputs.iter().flatten())
            .map(|vc| vc.head_wait)
            .max()
            .unwrap_or(0);
        Diagnostics {
            in_flight: self.in_flight(),
            source_queued: queued,
            buffered_flits: occupancy,
            oldest_packet_age,
            max_head_wait,
        }
    }

    /// Snapshot of *where* the network is stuck: the oldest unfinished
    /// packets with their current locations, plus the input VCs whose head
    /// flits have waited longest. Used by the simulation watchdog to turn
    /// "no forward progress" into an actionable diagnostic instead of a
    /// hang.
    pub fn stall_report(&self) -> StallReport {
        let mut metas: Vec<_> = self
            .in_flight
            .values()
            .filter(|m| !self.is_zombie(m.packet.id))
            .collect();
        metas.sort_by_key(|m| (m.packet.birth, m.packet.id));
        let stuck = metas
            .iter()
            .take(8)
            .map(|m| StuckPacket {
                packet: m.packet.id,
                src: m.packet.src,
                dst: m.packet.dst,
                age: self.now.saturating_sub(m.packet.birth),
                location: self.locate_packet(m.packet.id, m.packet.src),
            })
            .collect();
        let mut blocked: Vec<BlockedChannel> = Vec::new();
        for (r, router) in self.routers.iter().enumerate() {
            for (p, port) in router.inputs.iter().enumerate() {
                for (v, vc) in port.iter().enumerate() {
                    if vc.head_wait > 0 && !vc.fifo.is_empty() {
                        blocked.push(BlockedChannel {
                            router: RouterId(r),
                            port: PortId(p),
                            vc: VcId(v),
                            head_wait: vc.head_wait,
                        });
                    }
                }
            }
        }
        blocked.sort_by_key(|b| std::cmp::Reverse(b.head_wait));
        blocked.truncate(8);
        StallReport {
            cycle: self.now,
            in_flight: self.in_flight(),
            stuck,
            blocked,
        }
    }

    fn locate_packet(&self, id: PacketId, src: NodeId) -> String {
        for (r, router) in self.routers.iter().enumerate() {
            for (p, port) in router.inputs.iter().enumerate() {
                for (v, vc) in port.iter().enumerate() {
                    if vc.fifo.iter().any(|f| f.packet == id) {
                        return format!("r{r}.p{p}.v{v}");
                    }
                }
            }
        }
        let n = &self.nodes[src.index()];
        let queued = n.queue.iter().any(|pk| pk.id == id)
            || n.sending
                .as_ref()
                .is_some_and(|s| s.flits.front().is_some_and(|f| f.packet == id));
        if queued {
            return format!("queued at {src}");
        }
        if let Some(fs) = self.faults.as_ref() {
            for (l, lt) in fs.links.iter().enumerate() {
                if lt.replay.iter().any(|e| e.flit.packet == id) {
                    return format!("replay buffer of l{l}");
                }
            }
        }
        "on a link".to_string()
    }

    /// Enqueues a packet at `src`'s source queue; returns its id.
    ///
    /// The source queue is unbounded (clients model finite request windows
    /// themselves, e.g. via MSHR counts).
    ///
    /// # Panics
    /// Panics if `src` or `dst` is out of range or `size` is zero.
    pub fn enqueue(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size: Bits,
        class: PacketClass,
        tag: u64,
    ) -> PacketId {
        assert!(src.index() < self.nodes.len(), "src out of range");
        assert!(dst.index() < self.nodes.len(), "dst out of range");
        assert!(size.get() > 0, "packet size must be non-zero");
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let packet = Packet {
            id,
            src,
            dst,
            size,
            class,
            tag,
            birth: self.now,
        };
        let total = size.flits(self.cfg.flit_width);
        self.in_flight.insert(
            id,
            PacketMeta {
                packet,
                inject: self.now,
                received: 0,
                total,
                measured: self.measuring,
            },
        );
        if self.measuring {
            self.stats.packets_offered += 1;
        }
        self.nodes[src.index()].queue.push_back(packet);
        id
    }

    /// Contention-free reference latency in cycles for a `flits`-flit packet
    /// from `src` to `dst`: `3·hops + 4 + ceil((flits-1)/b)` where `b` is
    /// the bottleneck lane count along the dimension-order path (including
    /// the injection and ejection ports).
    pub fn ideal_latency(&self, src: NodeId, dst: NodeId, flits: u32) -> u64 {
        let hops = self.graph.route_hops(src, dst) as u64;
        let b = self.path_min_lanes(src, dst).max(1) as u64;
        3 * hops + 4 + (u64::from(flits) - 1).div_ceil(b)
    }

    fn path_min_lanes(&self, src: NodeId, dst: NodeId) -> usize {
        let src_at = self.graph.attachment(src);
        let dst_at = self.graph.attachment(dst);
        let mut min = self.nodes[src.index()]
            .lanes
            .min(self.routers[dst_at.router.index()].outputs[dst_at.port.index()].lanes);
        let mut cur = src_at.router;
        let routing = RoutingKind::DimensionOrder;
        while cur != dst_at.router {
            let rc = routing
                .route(&self.graph, cur, src, dst, false, false)
                .expect("not at destination");
            let out = self.graph.out_link(cur, rc.port).expect("channel port");
            min = min.min(self.link_lanes[out.index()]);
            cur = match self.graph.router(cur).ports[rc.port.index()].kind {
                PortKind::Link { to, .. } => to,
                PortKind::Local { .. } => unreachable!("route() returns link ports"),
            };
        }
        min
    }

    fn schedule(&mut self, delay: u64, ev: Event) {
        debug_assert!(delay >= 1 && (delay as usize) < WHEEL + 1);
        let idx = ((self.now + delay) % WHEEL as u64) as usize;
        self.wheel[idx].push(ev);
    }

    /// Advances the simulation by one cycle.
    ///
    /// Under [`EngineMode::ActiveSet`] (the default) the allocation phases
    /// visit only the scheduler's wake set — routers that reported
    /// [`crate::sched::RouterActivity::Active`] via a flit arrival — in
    /// ascending index order, so the visit sequence is the exact
    /// subsequence of the reference walk and every skipped router is a
    /// no-op. Under [`EngineMode::PollAll`] every live router is walked.
    /// Both modes produce byte-identical state, statistics and traces.
    pub fn step(&mut self) {
        let t = self.prof_start();
        if self.faults.is_some() {
            self.apply_hard_faults();
            self.drain_far_events();
        }
        let t = self.prof_lap(t, Stage::LinkTraverse);
        let idx = (self.now % WHEEL as u64) as usize;
        // Swap the due slot against the spare vec so its capacity is kept.
        let mut events =
            std::mem::replace(&mut self.wheel[idx], std::mem::take(&mut self.wheel_spare));
        for ev in events.drain(..) {
            self.deliver(ev);
        }
        self.wheel_spare = events;
        let t = self.prof_lap(t, Stage::BufferWrite);
        if self.faults.is_some() {
            self.process_absorbing();
        }
        let t = self.prof_lap(t, Stage::LinkTraverse);
        for n in 0..self.nodes.len() {
            self.node_inject(n);
        }
        let _ = self.prof_lap(t, Stage::Inject);
        // All wake points (flit deliveries) for this cycle have fired;
        // take the wake set. Dead routers are frozen entirely (fail-stop):
        // they stay in the set (their occupancy never drains) but are
        // skipped by both modes.
        let list = self.sched.begin_cycle();
        let total = self.routers.len();
        let mut visits = 0usize;
        match self.sched.mode() {
            EngineMode::ActiveSet => {
                // Routers outside the wake set hold no flits and have
                // nothing to route, allocate or traverse — skipping them
                // keeps low-load cycles proportional to traffic.
                for &r in &list {
                    if self.routers[r].occupancy > 0 && !self.router_dead(r) {
                        visits += 1;
                        self.rc_and_va(r);
                    }
                }
                for &r in &list {
                    if self.routers[r].occupancy > 0 && !self.router_dead(r) {
                        self.switch_alloc(r);
                    }
                }
            }
            EngineMode::PollAll => {
                // Reference walk: every router, port and VC, every cycle.
                for r in 0..total {
                    if !self.router_dead(r) {
                        visits += 1;
                        self.rc_and_va(r);
                    }
                }
                for r in 0..total {
                    if !self.router_dead(r) {
                        self.switch_alloc(r);
                    }
                }
            }
        }
        self.sched.note_full_cycle(visits, total);
        // Routers whose buffers drained this cycle go back to sleep; the
        // rest stay for the next cycle (membership mirrors occupancy).
        {
            let mut list = list;
            let routers = &self.routers;
            let sched = &mut self.sched;
            list.retain(|&r| {
                if routers[r].occupancy > 0 {
                    true
                } else {
                    sched.sleep(r);
                    false
                }
            });
            sched.end_cycle(list);
        }
        // rc_and_va / switch_alloc charge RC/VA/SA/ST internally.
        let t = self.prof_start();
        if self.measuring {
            self.stats.cycles += 1;
            for (i, r) in self.routers.iter().enumerate() {
                self.stats.buffer_occ_integral[i] += u64::from(r.occupancy);
                self.stats.vc_busy_integral[i] += u64::from(r.busy_vcs);
            }
        }
        if self.epochs.is_some() {
            let now = self.now;
            let routers = &self.routers;
            if let Some(ep) = self.epochs.as_deref_mut() {
                for (i, r) in routers.iter().enumerate() {
                    ep.accumulate_router(i, u64::from(r.occupancy), u64::from(r.busy_vcs));
                }
                ep.maybe_close(now);
            }
        }
        let _ = self.prof_lap(t, Stage::Stats);
        if let Some(p) = self.profiler.as_deref_mut() {
            p.note_step();
        }
        self.now += 1;
    }

    fn deliver(&mut self, ev: Event) {
        match ev {
            Event::FlitArrive {
                router,
                port,
                vc,
                mut flit,
            } => {
                // A flit of an abandoned packet arriving at a live router is
                // squashed on arrival: counted as absorbed, its buffer slot
                // credited straight back. (At a dead router it freezes in
                // the buffer like everything else there.) Under recovery,
                // `FlitArrive` only carries node-injected flits —
                // router-to-router traffic travels as `LinkArrive`.
                if !self.router_dead(router.index()) && self.is_zombie(flit.packet) {
                    let up = match self.graph.router(router).ports[port.index()].kind {
                        PortKind::Local { node } => Upstream::Node(node),
                        PortKind::Link { into, .. } => {
                            let l = self.graph.links()[into.index()];
                            Upstream::Router(l.src, l.src_port)
                        }
                    };
                    let fs = self.faults.as_mut().expect("zombies imply fault mode");
                    *fs.absorbed.entry(flit.packet).or_insert(0) += 1;
                    self.schedule(1, Event::Credit { up, vc });
                    return;
                }
                flit.buffered = self.now;
                let r = &mut self.routers[router.index()];
                if r.inputs[port.index()][vc.index()].fifo.is_empty() {
                    r.busy_vcs += 1;
                }
                r.inputs[port.index()][vc.index()].fifo.push_back(flit);
                r.occupancy += 1;
                r.port_occ[port.index()] += 1;
                debug_assert!(
                    r.inputs[port.index()][vc.index()].fifo.len()
                        <= self.cfg.routers[router.index()].buffer_depth,
                    "buffer overflow at {router} {port} {vc}: credit protocol violated"
                );
                self.sched.wake(router.index(), WakeReason::FlitArrive);
                if self.measuring {
                    self.stats.routers[router.index()].buffer_writes += 1;
                }
                if self.tracer.is_some() {
                    self.emit(TraceEvent::BufferWrite {
                        cycle: self.now,
                        router,
                        port,
                        vc,
                        packet: flit.packet,
                        seq: flit.seq,
                    });
                }
            }
            Event::Credit { up, vc } => match up {
                Upstream::Router(r, p) => {
                    self.routers[r.index()].outputs[p.index()].vcs[vc.index()].credits += 1;
                }
                Upstream::Node(n) => {
                    self.nodes[n.index()].vcs[vc.index()].credits += 1;
                }
            },
            Event::Retire { flit } => self.retire_flit(flit),
            Event::LinkArrive {
                link,
                seq,
                corrupted,
                router,
                port,
                vc,
                flit,
            } => self.link_arrive(link, seq, corrupted, router, port, vc, flit),
            Event::Ack { link, seq } => self.link_ack(link, seq),
            Event::Nack { link, seq } => self.link_nack(link, seq),
        }
    }

    fn router_dead(&self, r: usize) -> bool {
        self.faults.as_ref().is_some_and(|f| f.router_dead[r])
    }

    /// Sends `flit` over `link` under the fault model: assign a sequence
    /// number, keep a replay copy, draw the corruption coin, and arm the
    /// retry timeout if the replay window was empty.
    fn fault_send(&mut self, link: LinkId, dst: RouterId, dst_port: PortId, vc: VcId, flit: Flit) {
        let now = self.now;
        let fs = self.faults.as_mut().expect("fault-mode send");
        let li = link.index();
        let seq = fs.links[li].tx_seq;
        fs.links[li].tx_seq += 1;
        let was_empty = fs.links[li].replay.is_empty();
        fs.links[li].replay.push_back(ReplayEntry { seq, vc, flit });
        fs.links[li].in_transit[vc.index()] += 1;
        let p = fs.p_flit[li];
        let corrupted = p > 0.0 && fs.rng.random::<f64>() < p;
        if was_empty {
            fs.links[li].attempts = 1;
            let epoch = fs.links[li].epoch;
            let timeout = fs.plan.retry.timeout;
            fs.schedule_far(now + timeout, FarEvent::Timeout { link, epoch });
        }
        self.schedule(
            2,
            Event::LinkArrive {
                link,
                seq,
                corrupted,
                router: dst,
                port: dst_port,
                vc,
                flit,
            },
        );
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Event::LinkArrive payload
    fn link_arrive(
        &mut self,
        link: LinkId,
        seq: u64,
        corrupted: bool,
        router: RouterId,
        port: PortId,
        vc: VcId,
        mut flit: Flit,
    ) {
        enum Verdict {
            Drop,
            Nack,
            Accept,
        }
        let squash = self.is_zombie(flit.packet);
        let verdict = {
            let fs = self.faults.as_mut().expect("fault event without faults");
            let li = link.index();
            if fs.router_dead[router.index()] {
                // Fail-stop receiver: everything vanishes (no ack, no nack);
                // the sender times out and eventually exhausts its retries.
                fs.counters.flits_lost_dead_router += 1;
                Verdict::Drop
            } else if seq != fs.links[li].rx_expected {
                // Go-back-N: a copy behind a corrupted flit, discarded.
                Verdict::Drop
            } else if corrupted {
                fs.counters.flits_corrupted += 1;
                Verdict::Nack
            } else {
                fs.links[li].rx_expected += 1;
                let it = &mut fs.links[li].in_transit[vc.index()];
                debug_assert!(*it > 0, "accepted flit was never counted in transit");
                *it -= 1;
                Verdict::Accept
            }
        };
        match verdict {
            Verdict::Drop => {}
            Verdict::Nack => {
                self.schedule(1, Event::Nack { link, seq });
                if self.tracer.is_some() {
                    self.emit(TraceEvent::Fault {
                        cycle: self.now,
                        unit: FaultUnit::Corrupt { link },
                    });
                }
            }
            Verdict::Accept => {
                self.schedule(1, Event::Ack { link, seq });
                // An accepted flit of an abandoned packet is squashed
                // instead of buffered: the link protocol advances normally
                // (ack sent, sequence consumed) but the flit is counted as
                // absorbed and its reserved buffer slot credited back.
                if squash {
                    let l = self.graph.links()[link.index()];
                    let fs = self.faults.as_mut().expect("fault event without faults");
                    *fs.absorbed.entry(flit.packet).or_insert(0) += 1;
                    self.schedule(
                        1,
                        Event::Credit {
                            up: Upstream::Router(l.src, l.src_port),
                            vc,
                        },
                    );
                    return;
                }
                flit.buffered = self.now;
                let r = &mut self.routers[router.index()];
                if r.inputs[port.index()][vc.index()].fifo.is_empty() {
                    r.busy_vcs += 1;
                }
                r.inputs[port.index()][vc.index()].fifo.push_back(flit);
                r.occupancy += 1;
                r.port_occ[port.index()] += 1;
                debug_assert!(
                    r.inputs[port.index()][vc.index()].fifo.len()
                        <= self.cfg.routers[router.index()].buffer_depth,
                    "buffer overflow at {router} {port} {vc}: credit protocol violated"
                );
                self.sched.wake(router.index(), WakeReason::LinkArrive);
                if self.measuring {
                    self.stats.routers[router.index()].buffer_writes += 1;
                }
                if self.tracer.is_some() {
                    self.emit(TraceEvent::BufferWrite {
                        cycle: self.now,
                        router,
                        port,
                        vc,
                        packet: flit.packet,
                        seq: flit.seq,
                    });
                }
            }
        }
    }

    fn link_ack(&mut self, link: LinkId, seq: u64) {
        let now = self.now;
        let fs = self.faults.as_mut().expect("fault event without faults");
        let li = link.index();
        if fs.links[li].replay.front().map(|e| e.seq) != Some(seq) {
            return; // stale ack of an already-popped retransmission
        }
        fs.links[li].replay.pop_front();
        fs.links[li].epoch += 1;
        fs.links[li].attempts = 1;
        fs.links[li].backoff_until = 0;
        if !fs.links[li].replay.is_empty() {
            let epoch = fs.links[li].epoch;
            let timeout = fs.plan.retry.timeout;
            fs.schedule_far(now + timeout, FarEvent::Timeout { link, epoch });
        }
    }

    fn link_nack(&mut self, link: LinkId, seq: u64) {
        let now = self.now;
        let fire = {
            let fs = self.faults.as_mut().expect("fault event without faults");
            let li = link.index();
            if fs.links[li].replay.front().map(|e| e.seq) != Some(seq)
                || now < fs.links[li].backoff_until
            {
                false // duplicate of a failure already being retried
            } else {
                fs.counters.retries += 1;
                true
            }
        };
        if fire {
            self.link_retry(link);
        }
    }

    /// Shared retry path for nacks and timeouts: either give up with a
    /// typed [`UnrecoverableFault`], or schedule a backoff-delayed resend
    /// of the replay window.
    fn link_retry(&mut self, link: LinkId) {
        let now = self.now;
        let li = link.index();
        let exhausted = {
            let fs = self.faults.as_ref().expect("fault mode");
            fs.links[li].attempts >= fs.plan.retry.max_attempts
        };
        if exhausted {
            let l = self.graph.links()[li];
            let fs = self.faults.as_mut().expect("fault mode");
            if fs.error.is_none() {
                fs.error = Some(UnrecoverableFault {
                    link,
                    src: l.src,
                    dst: l.dst,
                    attempts: fs.links[li].attempts,
                    cycle: now,
                    packet: fs.links[li].replay.front().map(|e| e.flit.packet),
                });
            }
            return;
        }
        let fs = self.faults.as_mut().expect("fault mode");
        fs.links[li].attempts += 1;
        fs.links[li].epoch += 1;
        let delay = fs.plan.retry.backoff(fs.links[li].attempts - 1);
        let epoch = fs.links[li].epoch;
        fs.links[li].backoff_until = now + delay;
        fs.schedule_far(now + delay, FarEvent::Resend { link, epoch });
    }

    /// Retransmits `link`'s whole replay window (go-back-N) with the
    /// original sequence numbers, then re-arms the retry timeout. A no-op
    /// when `epoch` is stale (an ack made progress after the resend was
    /// scheduled).
    fn link_resend(&mut self, link: LinkId, epoch: u64) {
        let now = self.now;
        let li = link.index();
        let entries: Vec<ReplayEntry> = {
            let fs = self.faults.as_mut().expect("fault mode");
            if fs.links[li].epoch != epoch || fs.links[li].replay.is_empty() {
                return;
            }
            fs.links[li].replay.iter().cloned().collect()
        };
        let l = self.graph.links()[li];
        for e in entries {
            let corrupted = {
                let fs = self.faults.as_mut().expect("fault mode");
                fs.counters.retransmissions += 1;
                let p = fs.p_flit[li];
                p > 0.0 && fs.rng.random::<f64>() < p
            };
            if self.tracer.is_some() {
                self.emit(TraceEvent::Retransmit {
                    cycle: self.now,
                    link,
                    seq: e.seq,
                });
            }
            self.schedule(
                2,
                Event::LinkArrive {
                    link,
                    seq: e.seq,
                    corrupted,
                    router: l.dst,
                    port: l.dst_port,
                    vc: e.vc,
                    flit: e.flit,
                },
            );
        }
        let fs = self.faults.as_mut().expect("fault mode");
        let timeout = fs.plan.retry.timeout;
        let cur_epoch = fs.links[li].epoch;
        fs.schedule_far(
            now + timeout,
            FarEvent::Timeout {
                link,
                epoch: cur_epoch,
            },
        );
    }

    fn drain_far_events(&mut self) {
        let due = {
            let fs = self.faults.as_mut().expect("fault mode");
            if fs.far.first_key_value().is_none_or(|(&c, _)| c > self.now) {
                return;
            }
            fs.due_far(self.now)
        };
        for ev in due {
            match ev {
                FarEvent::Timeout { link, epoch } => {
                    let fire = {
                        let fs = self.faults.as_mut().expect("fault mode");
                        let lt = &fs.links[link.index()];
                        if lt.epoch == epoch && !lt.replay.is_empty() {
                            fs.counters.timeouts += 1;
                            true
                        } else {
                            false
                        }
                    };
                    if fire {
                        self.link_retry(link);
                    }
                }
                FarEvent::Resend { link, epoch } => self.link_resend(link, epoch),
                FarEvent::E2eAck { node, seq } => self.e2e_ack(node, seq),
                FarEvent::E2eTimeout { node, seq, attempt } => self.e2e_timeout(node, seq, attempt),
            }
        }
    }

    /// Delivery ack reaching the source NI: the retained copy is freed.
    fn e2e_ack(&mut self, node: NodeId, seq: u64) {
        let fs = self.faults.as_mut().expect("fault mode");
        let e2e = fs.e2e.as_deref_mut().expect("e2e event without recovery");
        let src = &mut e2e.sources[node.index()];
        if let Some(r) = src.retained.remove(&seq) {
            e2e.counters.acks += 1;
            if r.attempts > 1 {
                e2e.counters.recovered += 1;
            }
        }
    }

    /// Ack-timeout firing at the source NI for retained sequence `seq`.
    /// Stale stamps (a reinjection already re-armed with a higher attempt
    /// count) and already-resolved sequences are no-ops; an alive copy
    /// re-arms (it may be stalled behind backpressure, not lost); a dead
    /// copy is reinjected until the attempt budget runs out.
    fn e2e_timeout(&mut self, node: NodeId, seq: u64, attempt: u32) {
        enum Action {
            Nothing,
            Rearm(u32),
            Reinject,
            GiveUp,
        }
        let Some(policy) = self.e2e().map(|e| e.policy) else {
            return;
        };
        let action = {
            let fs = self.faults.as_mut().expect("fault mode");
            let e2e = fs.e2e.as_deref_mut().expect("e2e event without recovery");
            let src = &mut e2e.sources[node.index()];
            match src.retained.get(&seq) {
                None => Action::Nothing,
                Some(r) if r.attempts != attempt => Action::Nothing,
                Some(r) if r.current_alive => Action::Rearm(r.attempts),
                _ if src.is_resolved(seq) => Action::Nothing,
                Some(r) if r.attempts >= policy.retry.max_attempts => Action::GiveUp,
                Some(_) => Action::Reinject,
            }
        };
        match action {
            Action::Nothing => {}
            Action::Rearm(attempts) => {
                let at = self.now + policy.retry.backoff(attempts);
                let fs = self.faults.as_mut().expect("fault mode");
                fs.schedule_far(
                    at,
                    FarEvent::E2eTimeout {
                        node,
                        seq,
                        attempt: attempts,
                    },
                );
            }
            Action::Reinject => self.e2e_reinject(node, seq),
            Action::GiveUp => {
                let fs = self.faults.as_mut().expect("fault mode");
                let e2e = fs.e2e.as_deref_mut().expect("e2e event without recovery");
                let src = &mut e2e.sources[node.index()];
                let r = src.retained.remove(&seq).expect("checked above");
                src.resolve(seq);
                e2e.counters.lost += 1;
                e2e.by_packet.remove(&r.current);
                let packet = Packet {
                    id: r.current,
                    src: node,
                    dst: r.dst,
                    size: r.size,
                    class: r.class,
                    tag: r.tag,
                    birth: r.first_birth,
                };
                fs.record_drop(DroppedPacket {
                    packet,
                    cycle: self.now,
                    reason: DropReason::RecoveryExhausted,
                    recoverable: false,
                });
            }
        }
    }

    /// Injects a fresh copy of retained sequence `seq` at `node` and arms
    /// its (backed-off) ack timeout.
    fn e2e_reinject(&mut self, node: NodeId, seq: u64) {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let (packet, total, measured, attempts) = {
            let flit_width = self.cfg.flit_width;
            let fs = self.faults.as_mut().expect("fault mode");
            let e2e = fs.e2e.as_deref_mut().expect("e2e event without recovery");
            let src = &mut e2e.sources[node.index()];
            let r = src.retained.get_mut(&seq).expect("reinject of retained");
            r.attempts += 1;
            r.current = id;
            r.current_alive = true;
            let packet = Packet {
                id,
                src: node,
                dst: r.dst,
                size: r.size,
                class: r.class,
                tag: r.tag,
                birth: r.first_birth,
            };
            let total = r.size.flits(flit_width);
            e2e.by_packet.insert(id, (node, seq));
            e2e.counters.reinjections += 1;
            e2e.counters.reinjected_flits += u64::from(total);
            (packet, total, r.measured, r.attempts)
        };
        let at = self.now
            + self
                .e2e()
                .expect("still enabled")
                .policy
                .retry
                .backoff(attempts);
        let fs = self.faults.as_mut().expect("fault mode");
        fs.schedule_far(
            at,
            FarEvent::E2eTimeout {
                node,
                seq,
                attempt: attempts,
            },
        );
        self.in_flight.insert(
            id,
            PacketMeta {
                packet,
                inject: self.now,
                received: 0,
                total,
                measured,
            },
        );
        // Reinjections go to the queue *front*: they already own a retention
        // slot, so they must not starve behind a new packet that a full
        // retention buffer is gating.
        self.nodes[node.index()].queue.push_front(packet);
    }

    fn apply_hard_faults(&mut self) {
        loop {
            let kind = {
                let fs = self.faults.as_mut().expect("fault mode");
                match fs.hard.get(fs.next_hard) {
                    Some(h) if h.cycle <= self.now => {
                        fs.next_hard += 1;
                        fs.routing_stale = true;
                        Some(h.kind)
                    }
                    _ => None,
                }
            };
            match kind {
                Some(FaultKind::Link(l)) => self.kill_link(l),
                Some(FaultKind::Router(r)) => self.kill_router(r),
                None => return,
            }
        }
    }

    /// Kills both directions of the physical channel containing `link`.
    fn kill_link(&mut self, link: LinkId) {
        let l = self.graph.links()[link.index()];
        let reverse = self
            .graph
            .links()
            .iter()
            .enumerate()
            .find(|(_, r)| {
                r.src == l.dst
                    && r.dst == l.src
                    && r.src_port == l.dst_port
                    && r.dst_port == l.src_port
            })
            .map(|(i, _)| LinkId(i));
        self.kill_one_direction(link);
        if let Some(rev) = reverse {
            self.kill_one_direction(rev);
        }
    }

    fn kill_one_direction(&mut self, link: LinkId) {
        {
            let fs = self.faults.as_mut().expect("fault mode");
            if fs.links[link.index()].dead {
                return;
            }
            fs.links[link.index()].dead = true;
            fs.dead_links.push(link);
            fs.counters.links_dead += 1;
        }
        if self.tracer.is_some() {
            self.emit(TraceEvent::Fault {
                cycle: self.now,
                unit: FaultUnit::LinkDead { link },
            });
        }
        let l = self.graph.links()[link.index()];
        if !self.router_dead(l.src.index()) {
            self.rescind_routes_to(l.src, l.src_port);
        }
    }

    /// Rescinds computed-but-unused routes at `router` that target output
    /// port `out_port` (now dead): packets that have not moved a single flit
    /// on their grant re-enter route computation; mid-wormhole packets keep
    /// their grant and drain.
    fn rescind_routes_to(&mut self, router: RouterId, out_port: PortId) {
        let r = router.index();
        let nports = self.routers[r].inputs.len();
        let nvcs = self.cfg.routers[r].vcs_per_port;
        for p in 0..nports {
            for v in 0..nvcs {
                let rescind = {
                    let vc = &self.routers[r].inputs[p][v];
                    vc.sent_on_grant == 0 && vc.route.is_some_and(|rt| rt.port == out_port)
                };
                if !rescind {
                    continue;
                }
                if let Some(ovc) = self.routers[r].inputs[p][v].out_vc {
                    self.routers[r].outputs[out_port.index()].vcs[ovc.index()].owner = None;
                }
                let vc = &mut self.routers[r].inputs[p][v];
                vc.route = None;
                vc.out_vc = None;
                vc.in_escape_grant = false;
                vc.head_wait = 0;
            }
        }
    }

    /// Fail-stop kill of a whole router: freezes its pipeline and kills
    /// every incident link (in both directions).
    fn kill_router(&mut self, router: RouterId) {
        {
            let fs = self.faults.as_mut().expect("fault mode");
            if fs.router_dead[router.index()] {
                return;
            }
            fs.router_dead[router.index()] = true;
            fs.dead_routers.push(router);
            fs.counters.routers_dead += 1;
        }
        if self.tracer.is_some() {
            self.emit(TraceEvent::Fault {
                cycle: self.now,
                unit: FaultUnit::RouterDead { router },
            });
        }
        let incident: Vec<LinkId> = self
            .graph
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.src == router || l.dst == router)
            .map(|(i, _)| LinkId(i))
            .collect();
        for l in incident {
            self.kill_one_direction(l);
        }
        self.abandon_router_traffic(router);
    }

    /// Abandons every packet with flits wedged in a freshly killed router so
    /// end-to-end recovery can reinject it. The packet becomes a *zombie*:
    /// its frozen flits stay resident forever (flit conservation keeps
    /// holding), progress accounting ignores it, and its flits elsewhere in
    /// the network are scrubbed so the grants they hold cannot wedge live
    /// traffic. No-op unless the plan enables [`RecoveryPolicy`].
    fn abandon_router_traffic(&mut self, router: RouterId) {
        if self.e2e().is_none() {
            return;
        }
        // 1. Packets frozen inside the dead router or caught in the replay
        //    window of an inbound link. Inbound link epochs are bumped so
        //    pending retry timeouts go stale: the receiver is gone, and the
        //    link layer must not count to retry exhaustion on its behalf.
        let mut frozen: Vec<PacketId> = Vec::new();
        for inputs in &self.routers[router.index()].inputs {
            for vc in inputs {
                frozen.extend(vc.fifo.iter().map(|f| f.packet));
            }
        }
        {
            let fs = self.faults.as_mut().expect("fault mode");
            for (li, l) in self.graph.links().iter().enumerate() {
                if l.dst != router {
                    continue;
                }
                let lt = &mut fs.links[li];
                frozen.extend(lt.replay.iter().map(|e| e.flit.packet));
                lt.epoch += 1;
            }
        }
        frozen.sort_unstable();
        frozen.dedup();
        for pid in frozen {
            self.abandon_packet(pid, DropReason::Wedged);
        }
        // 2. Nodes attached to the dead router: a mid-injection packet can
        //    never finish sending. Its unsent flits are charged to the
        //    absorbed ledger (conservation slack for flits that never enter
        //    the network) and the packet abandoned as source-dead.
        for n in 0..self.nodes.len() {
            if self.nodes[n].router != router {
                continue;
            }
            let Some(s) = self.nodes[n].sending.take() else {
                continue;
            };
            let pid = s.flits.front().expect("in-progress send has flits").packet;
            {
                let fs = self.faults.as_mut().expect("fault mode");
                *fs.absorbed.entry(pid).or_insert(0) += s.flits.len() as u32;
            }
            self.nodes[n].vcs[s.vc.index()].owner = None;
            self.abandon_packet(pid, DropReason::SourceDead);
        }
        // 3. Scrub every live router: zombie flits parked anywhere are
        //    removed (their buffer slots credited back upstream) and any
        //    input VC whose grant a zombie holds is released so the output
        //    VC frees for live traffic.
        let zombies = self.e2e().expect("checked above").zombies.clone();
        if zombies.is_empty() {
            return;
        }
        for ri in 0..self.routers.len() {
            if self.router_dead(ri) {
                continue;
            }
            let nports = self.routers[ri].inputs.len();
            let nvcs = self.cfg.routers[ri].vcs_per_port;
            for p in 0..nports {
                let up = match self.graph.router(RouterId(ri)).ports[p].kind {
                    PortKind::Local { node } => Upstream::Node(node),
                    PortKind::Link { into, .. } => {
                        let l = self.graph.links()[into.index()];
                        Upstream::Router(l.src, l.src_port)
                    }
                };
                for v in 0..nvcs {
                    let mut scrubbed: Vec<PacketId> = Vec::new();
                    {
                        let fifo = &mut self.routers[ri].inputs[p][v].fifo;
                        fifo.retain(|f| {
                            if zombies.contains(&f.packet) {
                                scrubbed.push(f.packet);
                                false
                            } else {
                                true
                            }
                        });
                    }
                    if !scrubbed.is_empty() {
                        let removed = scrubbed.len() as u32;
                        self.routers[ri].occupancy -= removed;
                        self.routers[ri].port_occ[p] -= removed;
                        if self.routers[ri].inputs[p][v].fifo.is_empty() {
                            self.routers[ri].busy_vcs -= 1;
                        }
                        for _ in 0..removed {
                            self.schedule(1, Event::Credit { up, vc: VcId(v) });
                        }
                        let fs = self.faults.as_mut().expect("fault mode");
                        for pid in scrubbed {
                            *fs.absorbed.entry(pid).or_insert(0) += 1;
                        }
                    }
                    let holder = self.routers[ri].inputs[p][v].holder;
                    if holder.is_some_and(|h| zombies.contains(&h)) {
                        let (route, out_vc) = {
                            let vc = &self.routers[ri].inputs[p][v];
                            (vc.route, vc.out_vc)
                        };
                        if let (Some(rt), Some(ov)) = (route, out_vc) {
                            let op = rt.port.index();
                            let ovcs = &mut self.routers[ri].outputs[op].vcs;
                            if !ovcs.is_empty()
                                && ovcs[ov.index()].owner == Some((PortId(p), VcId(v)))
                            {
                                ovcs[ov.index()].owner = None;
                            }
                        }
                        let fs = self.faults.as_mut().expect("fault mode");
                        fs.absorbing.remove(&(RouterId(ri), PortId(p), VcId(v)));
                        self.routers[ri].inputs[p][v].release();
                    }
                }
            }
        }
    }

    /// Marks one in-flight packet as permanently wedged in dead equipment.
    /// It joins the zombie set (its engine metadata stays so conservation
    /// invariants hold) and the drop is recorded with its recoverability
    /// under the end-to-end layer.
    fn abandon_packet(&mut self, pid: PacketId, reason: DropReason) {
        let Some(meta) = self.in_flight.get(&pid) else {
            return;
        };
        let packet = meta.packet;
        let fs = self.faults.as_mut().expect("fault mode");
        let recoverable = {
            let e2e = fs.e2e.as_deref_mut().expect("abandon requires recovery");
            if !e2e.zombies.insert(pid) {
                return; // already abandoned by an earlier kill
            }
            e2e.note_drop(pid, reason)
        };
        fs.record_drop(DroppedPacket {
            packet,
            cycle: self.now,
            reason,
            recoverable,
        });
    }

    /// Drains flits of unroutable packets from their input VCs: buffer
    /// slots are freed (credits flow back upstream) and the packet is
    /// reported dropped once its tail is consumed. This is what turns "no
    /// route to destination" into a typed result instead of tree-saturating
    /// backpressure.
    fn process_absorbing(&mut self) {
        let entries: Vec<(RouterId, PortId, VcId)> = {
            let fs = self.faults.as_ref().expect("fault mode");
            if fs.absorbing.is_empty() {
                return;
            }
            fs.absorbing.iter().copied().collect()
        };
        for (router, port, vc) in entries {
            let r = router.index();
            // An empty FIFO mid-absorb means the rest of the packet is still
            // in flight; it will be consumed on a later cycle.
            while let Some(flit) = self.routers[r].inputs[port.index()][vc.index()]
                .fifo
                .pop_front()
            {
                self.routers[r].occupancy -= 1;
                self.routers[r].port_occ[port.index()] -= 1;
                if self.routers[r].inputs[port.index()][vc.index()]
                    .fifo
                    .is_empty()
                {
                    self.routers[r].busy_vcs -= 1;
                }
                let up = match self.graph.router(router).ports[port.index()].kind {
                    PortKind::Local { node } => Upstream::Node(node),
                    PortKind::Link { into, .. } => {
                        let l = self.graph.links()[into.index()];
                        Upstream::Router(l.src, l.src_port)
                    }
                };
                self.schedule(1, Event::Credit { up, vc });
                let fs = self.faults.as_mut().expect("fault mode");
                *fs.absorbed.entry(flit.packet).or_insert(0) += 1;
                if flit.kind.is_tail() {
                    // A zombie reaching absorption was already recorded
                    // dropped at kill time; just free the VC.
                    if self.is_zombie(flit.packet) {
                        let fs = self.faults.as_mut().expect("fault mode");
                        fs.absorbing.remove(&(router, port, vc));
                        self.routers[r].inputs[port.index()][vc.index()].release();
                        break;
                    }
                    let (packet, received, total) = {
                        let meta = self
                            .in_flight
                            .get(&flit.packet)
                            .expect("absorbed packet is tracked");
                        (meta.packet, meta.received, meta.total)
                    };
                    let dst_router = self.graph.attachment(packet.dst).router;
                    let fs = self.faults.as_mut().expect("fault mode");
                    let reason = if fs.router_dead[dst_router.index()] {
                        DropReason::DestinationDead
                    } else {
                        DropReason::Unreachable
                    };
                    let absorbed = fs.absorbed.get(&flit.packet).copied().unwrap_or(0);
                    // Flits of this packet frozen in dead equipment keep the
                    // packet resident: it becomes a zombie instead of being
                    // fully retired from the ledger.
                    let keep_zombie = received + absorbed != total && fs.e2e.is_some();
                    let recoverable = match fs.e2e.as_deref_mut() {
                        Some(e2e) => e2e.note_drop(flit.packet, reason),
                        None => false,
                    };
                    let fs = self.faults.as_mut().expect("fault mode");
                    if keep_zombie {
                        fs.e2e
                            .as_deref_mut()
                            .expect("zombies only under recovery")
                            .zombies
                            .insert(flit.packet);
                    } else {
                        self.in_flight.remove(&flit.packet);
                        let fs = self.faults.as_mut().expect("fault mode");
                        fs.absorbed.remove(&flit.packet);
                    }
                    let fs = self.faults.as_mut().expect("fault mode");
                    fs.absorbing.remove(&(router, port, vc));
                    fs.record_drop(DroppedPacket {
                        packet,
                        cycle: self.now,
                        reason,
                        recoverable,
                    });
                    self.routers[r].inputs[port.index()][vc.index()].release();
                    break;
                }
            }
        }
    }

    fn retire_flit(&mut self, flit: Flit) {
        let meta = self
            .in_flight
            .get_mut(&flit.packet)
            .expect("retired flit of unknown packet");
        meta.received += 1;
        debug_assert!(meta.received <= meta.total);
        let done = meta.received == meta.total;
        if meta.measured && self.measuring {
            self.stats.flits_retired += 1;
        }
        if self.tracer.is_some() {
            self.emit(TraceEvent::Eject {
                cycle: self.now,
                node: flit.dst,
                packet: flit.packet,
                seq: flit.seq,
                done,
            });
        }
        if done {
            let meta = self.in_flight.remove(&flit.packet).expect("present");
            // End-to-end accounting: mark the sequence resolved and send the
            // ack back to the source NI. A copy of an already-resolved
            // sequence (the reinjection raced the original's delivery) is
            // suppressed — consumed silently, invisible to the client layer.
            let mut suppress = false;
            let mut ack: Option<(NodeId, u64)> = None;
            if let Some(fs) = self.faults.as_mut() {
                if let Some(e2e) = fs.e2e.as_deref_mut() {
                    if let Some((node, seq)) = e2e.by_packet.remove(&flit.packet) {
                        let src = &mut e2e.sources[node.index()];
                        if let Some(r) = src.retained.get_mut(&seq) {
                            if r.current == flit.packet {
                                r.current_alive = false;
                            }
                        }
                        if src.is_resolved(seq) {
                            suppress = true;
                            e2e.counters.duplicates_suppressed += 1;
                        } else {
                            src.resolve(seq);
                            ack = Some((node, seq));
                        }
                    }
                }
            }
            if let Some((node, seq)) = ack {
                let at = self.now + self.ideal_latency(flit.dst, flit.src, 1);
                let fs = self.faults.as_mut().expect("fault mode");
                fs.schedule_far(at, FarEvent::E2eAck { node, seq });
            }
            if suppress {
                return;
            }
            let rec = PacketRecord {
                src: meta.packet.src,
                dst: meta.packet.dst,
                birth: meta.packet.birth,
                inject: meta.inject,
                retire: self.now,
                flits: meta.total,
                ideal: self.ideal_latency(meta.packet.src, meta.packet.dst, meta.total),
                class: meta.packet.class,
            };
            if let Some(ep) = self.epochs.as_deref_mut() {
                ep.note_retired(&rec);
            }
            if meta.measured {
                self.stats.packets_retired += 1;
                self.stats.latency.add(&rec);
                self.stats.latency_by_class[NetStats::class_index(rec.class)].add(&rec);
                self.stats.latency_dist.add(&rec);
                self.stats.dist_by_class[NetStats::class_index(rec.class)].add(&rec);
                if self.record_packets {
                    self.stats.records.push(rec);
                }
            }
            self.delivered.push(Delivered {
                packet: meta.packet,
                inject: meta.inject,
                retire: self.now,
            });
        }
    }

    /// Class a packet may occupy at its source router's local input port.
    fn injection_class(&self, class: PacketClass) -> VcClass {
        if self.cfg.routing.reserves_escape_vc() {
            VcClass::NonEscape
        } else {
            let _ = class;
            VcClass::Any
        }
    }

    fn node_inject(&mut self, n: usize) {
        // Fault mode: packets to or from a dead router can never be
        // delivered — drop them at the source instead of wedging the queue.
        if self.faults.is_some() && self.nodes[n].sending.is_none() {
            while let Some(front) = self.nodes[n].queue.front() {
                let Some(fs) = self.faults.as_ref() else {
                    break;
                };
                let src_dead = fs.router_dead[self.nodes[n].router.index()];
                let dst_dead = fs.router_dead[self.graph.attachment(front.dst).router.index()];
                if !src_dead && !dst_dead {
                    break;
                }
                let packet = self.nodes[n].queue.pop_front().expect("non-empty");
                self.in_flight.remove(&packet.id);
                let reason = if src_dead {
                    DropReason::SourceDead
                } else {
                    DropReason::DestinationDead
                };
                if let Some(fs) = self.faults.as_mut() {
                    let recoverable = match fs.e2e.as_deref_mut() {
                        Some(e2e) => e2e.note_drop(packet.id, reason),
                        None => false,
                    };
                    fs.record_drop(DroppedPacket {
                        packet,
                        cycle: self.now,
                        reason,
                        recoverable,
                    });
                }
            }
        }
        // A full retention buffer blocks *new* packets only; a reinjection
        // at the queue front carries its original retention slot through.
        let mut gated = false;
        if self.nodes[n].sending.is_none() {
            if let Some(front) = self.nodes[n].queue.front().map(|p| p.id) {
                if let Some(e2e) = self.faults.as_mut().and_then(|fs| fs.e2e.as_deref_mut()) {
                    if !e2e.by_packet.contains_key(&front)
                        && e2e.sources[n].retained.len() >= e2e.policy.retention
                    {
                        e2e.counters.retention_stalls += 1;
                        gated = true;
                    }
                }
            }
        }
        // Start a new packet if idle.
        if !gated && self.nodes[n].sending.is_none() && !self.nodes[n].queue.is_empty() {
            let class = self.injection_class(self.nodes[n].queue[0].class);
            let node = &mut self.nodes[n];
            let vccount = node.vcs.len();
            let (lo, hi) = class.range(vccount);
            let pick = node.rr_vc.grant(vccount, |v| {
                (lo..hi).contains(&v) && node.vcs[v].owner.is_none() && node.vcs[v].credits > 0
            });
            if let Some(v) = pick {
                let packet = node.queue.pop_front().expect("non-empty");
                node.vcs[v].owner = Some((PortId(0), VcId(0))); // occupied marker
                let flits = Flit::fragment(&packet, self.cfg.flit_width, self.now);
                let total = flits.len() as u32;
                node.sending = Some(Sending {
                    vc: VcId(v),
                    flits: flits.into(),
                });
                if let Some(meta) = self.in_flight.get_mut(&packet.id) {
                    meta.inject = self.now;
                }
                if let Some(ep) = self.epochs.as_deref_mut() {
                    ep.note_inject();
                }
                if self.tracer.is_some() {
                    self.emit(TraceEvent::Inject {
                        cycle: self.now,
                        node: NodeId(n),
                        packet: packet.id,
                        flits: total,
                    });
                }
                // End-to-end: the first injection of a new packet assigns
                // its sequence number, retains a copy at the NI until the
                // destination's ack arrives, and arms the ack timeout.
                // Reinjections already own a slot and re-use it.
                if self.faults.as_ref().is_some_and(|fs| fs.e2e.is_some()) {
                    let measured = self.in_flight.get(&packet.id).is_some_and(|m| m.measured);
                    let fs = self.faults.as_mut().expect("checked above");
                    let arm = {
                        let e2e = fs.e2e.as_deref_mut().expect("checked above");
                        if e2e.by_packet.contains_key(&packet.id) {
                            None
                        } else {
                            let src = &mut e2e.sources[n];
                            let seq = src.next_seq;
                            src.next_seq += 1;
                            src.retained.insert(
                                seq,
                                Retained {
                                    dst: packet.dst,
                                    size: packet.size,
                                    class: packet.class,
                                    tag: packet.tag,
                                    measured,
                                    first_birth: packet.birth,
                                    attempts: 1,
                                    current: packet.id,
                                    current_alive: true,
                                },
                            );
                            e2e.by_packet.insert(packet.id, (NodeId(n), seq));
                            e2e.counters.retention_peak =
                                e2e.counters.retention_peak.max(src.retained.len() as u64);
                            Some((e2e.policy.retry.timeout, seq))
                        }
                    };
                    if let Some((timeout, seq)) = arm {
                        let at = self.now + timeout;
                        fs.schedule_far(
                            at,
                            FarEvent::E2eTimeout {
                                node: NodeId(n),
                                seq,
                                attempt: 1,
                            },
                        );
                    }
                }
            }
        }
        // Send flits of the in-progress packet.
        if self.nodes[n].sending.is_none() {
            return;
        }
        let mut events = std::mem::take(&mut self.scratch_events);
        let node = &mut self.nodes[n];
        let sending = node.sending.as_mut().expect("checked above");
        let vc = sending.vc;
        let mut sent = 0;
        while sent < node.lanes && !sending.flits.is_empty() && node.vcs[vc.index()].credits > 0 {
            let flit = sending.flits.pop_front().expect("non-empty");
            node.vcs[vc.index()].credits -= 1;
            events.push(Event::FlitArrive {
                router: node.router,
                port: node.port,
                vc,
                flit,
            });
            sent += 1;
        }
        let done = sending.flits.is_empty();
        if done {
            node.vcs[vc.index()].owner = None;
            node.sending = None;
        }
        for ev in events.drain(..) {
            self.schedule(1, ev);
        }
        self.scratch_events = events;
    }

    fn rc_and_va(&mut self, r: usize) {
        let t = self.prof_start();
        let router_id = RouterId(r);
        let vcs_per_port = self.cfg.routers[r].vcs_per_port;
        let reserves_escape = self.cfg.routing.reserves_escape_vc();
        let escape_timeout = self.cfg.escape_timeout;

        // --- Route computation & escape diversion -----------------------
        let nports = self.routers[r].inputs.len();
        let nout = self.routers[r].outputs.len();
        // Active-set refinement: skip whole input ports with no buffered
        // flits (nothing to route or age), and record exactly which output
        // ports have a VC-allocation requester so the VA phase below only
        // runs the arbiters that can grant. With the mask disabled (`!0`,
        // reference mode or >64 ports) every output is scanned as before;
        // scanning an output with no requester is a no-op either way.
        let gate = self.sched.mode() == EngineMode::ActiveSet && nout <= 64;
        let mut va_req: u64 = if gate { 0 } else { !0 };
        for p in 0..nports {
            if gate && self.routers[r].port_occ[p] == 0 {
                continue;
            }
            for v in 0..vcs_per_port {
                let (pkt, is_head, src, dst, class, has_route, _has_grant, sent, wait) = {
                    let vc = &self.routers[r].inputs[p][v];
                    match vc.fifo.front() {
                        Some(f) if f.kind.is_head() || vc.route.is_some() => (
                            f.packet,
                            f.kind.is_head(),
                            f.src,
                            f.dst,
                            f.class,
                            vc.route.is_some(),
                            vc.out_vc.is_some(),
                            vc.sent_on_grant,
                            vc.head_wait,
                        ),
                        _ => continue,
                    }
                };
                if !is_head && has_route {
                    continue; // body/tail in progress
                }
                let expedited = class == PacketClass::Expedited;
                let in_escape = reserves_escape && v == vcs_per_port - 1;
                if !has_route {
                    match self.cfg.routing.route(
                        &self.graph,
                        router_id,
                        src,
                        dst,
                        expedited,
                        in_escape,
                    ) {
                        Some(rc) => {
                            let vc = &mut self.routers[r].inputs[p][v];
                            vc.route = Some(rc);
                            vc.holder = Some(pkt);
                        }
                        None => {
                            let at = self.graph.attachment(dst);
                            if at.router != router_id {
                                // `None` away from the destination means the
                                // routing table has no surviving path: mark
                                // the VC for absorption (route stays `None`,
                                // so allocation ignores it).
                                debug_assert!(
                                    self.faults.is_some(),
                                    "unroutable packet without fault layer"
                                );
                                if let Some(fs) = self.faults.as_mut() {
                                    fs.absorbing.insert((router_id, PortId(p), VcId(v)));
                                }
                                self.routers[r].inputs[p][v].holder = Some(pkt);
                                continue;
                            }
                            // At destination router: eject through the local
                            // port of dst. No downstream VC needed.
                            let vc = &mut self.routers[r].inputs[p][v];
                            vc.route = Some(RouteChoice {
                                port: at.port,
                                class: VcClass::Any,
                            });
                            vc.out_vc = Some(VcId(0)); // sink: dummy grant
                            vc.holder = Some(pkt);
                        }
                    }
                } else if expedited
                    && !in_escape
                    && reserves_escape
                    && wait > escape_timeout
                    && sent == 0
                {
                    // Divert a stuck expedited head to the escape network.
                    if let Some(esc) =
                        self.cfg
                            .routing
                            .escape_route(&self.graph, router_id, src, dst)
                    {
                        // Rescind any unused normal grant.
                        let old = {
                            let vc = &self.routers[r].inputs[p][v];
                            vc.route.map(|rt| (rt.port, vc.out_vc))
                        };
                        if let Some((old_port, Some(old_vc))) = old {
                            if !matches!(
                                self.routers[r].outputs[old_port.index()].target,
                                OutputTarget::Sink { .. }
                            ) {
                                self.routers[r].outputs[old_port.index()].vcs[old_vc.index()]
                                    .owner = None;
                            }
                        }
                        let vc = &mut self.routers[r].inputs[p][v];
                        vc.route = Some(esc);
                        vc.out_vc = None;
                        vc.in_escape_grant = true;
                        vc.head_wait = 0;
                    }
                }
                // Age heads that have not moved yet.
                let vc = &mut self.routers[r].inputs[p][v];
                if vc.fifo.front().is_some_and(|f| f.kind.is_head()) && vc.sent_on_grant == 0 {
                    vc.head_wait = vc.head_wait.saturating_add(1);
                }
                // Final requester state for the VA phase: an ungranted head
                // with a computed route bids for its route's output port.
                if gate && vc.out_vc.is_none() && vc.fifo.front().is_some_and(|f| f.kind.is_head())
                {
                    if let Some(rt) = vc.route {
                        va_req |= 1u64 << rt.port.index();
                    }
                }
            }
        }

        // --- VC allocation ----------------------------------------------
        // Separable output-side allocation: each output port grants free
        // downstream VCs to requesting heads in round-robin order.
        let t = self.prof_lap(t, Stage::RouteCompute);
        for o in 0..nout {
            if va_req & (1u64 << (o & 63)) == 0 {
                continue; // no requester recorded for this output
            }
            if self.routers[r].outputs[o].vcs.is_empty() {
                continue; // sink: no VA needed
            }
            // Dead links take no new wormholes (granted packets drain).
            if let OutputTarget::Channel { link, .. } = self.routers[r].outputs[o].target {
                if self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.links[link.index()].dead)
                {
                    continue;
                }
            }
            let flat = nports * vcs_per_port;
            debug_assert!(flat <= 128, "flat input-VC index must fit the skip mask");
            // Requesters whose VC class had no free VC this cycle: skipped
            // (not granted, pointer not advanced) so that requesters of
            // other classes behind them are still served.
            let mut skipped = 0u128;
            loop {
                // Find next requester (head with route to `o`, no grant).
                let req = {
                    let router = &self.routers[r];
                    router.outputs[o].va_arb.peek(flat, |i| {
                        if skipped & (1u128 << i) != 0 {
                            return false;
                        }
                        let (p, v) = (i / vcs_per_port, i % vcs_per_port);
                        let vc = &router.inputs[p][v];
                        vc.out_vc.is_none()
                            && vc.route.is_some_and(|rt| rt.port.index() == o)
                            && vc.fifo.front().is_some_and(|f| f.kind.is_head())
                    })
                };
                let Some(i) = req else { break };
                let (p, v) = (i / vcs_per_port, i % vcs_per_port);
                let class = self.routers[r].inputs[p][v]
                    .route
                    .expect("requester has route")
                    .class;
                let down_vcs = self.routers[r].outputs[o].vcs.len();
                let (lo, hi) = class.range(down_vcs);
                let free = (lo..hi).find(|&dv| self.routers[r].outputs[o].vcs[dv].owner.is_none());
                let Some(dv) = free else {
                    skipped |= 1u128 << i;
                    continue;
                };
                {
                    let router = &mut self.routers[r];
                    router.outputs[o].vcs[dv].owner = Some((PortId(p), VcId(v)));
                    router.inputs[p][v].out_vc = Some(VcId(dv));
                    router.outputs[o].va_arb.advance_past(i, flat);
                }
                if self.measuring {
                    self.stats.routers[r].va_grants += 1;
                }
                if self.tracer.is_some() {
                    let packet = self.routers[r].inputs[p][v]
                        .fifo
                        .front()
                        .expect("requester has a head flit")
                        .packet;
                    self.emit(TraceEvent::VcAlloc {
                        cycle: self.now,
                        router: router_id,
                        in_port: PortId(p),
                        in_vc: VcId(v),
                        out_port: PortId(o),
                        out_vc: VcId(dv),
                        packet,
                    });
                }
            }
        }
        let _ = self.prof_lap(t, Stage::VcAlloc);
    }

    /// True when input VC `(p, v)` of router `r` can send its front flit.
    fn sa_eligible(&self, r: usize, p: usize, v: usize) -> Option<PortId> {
        let vc = &self.routers[r].inputs[p][v];
        let f = vc.fifo.front()?;
        if f.buffered >= self.now {
            return None; // still in stage 1
        }
        let route = vc.route?;
        let ovc = vc.out_vc?;
        let out = &self.routers[r].outputs[route.port.index()];
        match out.target {
            OutputTarget::Sink { .. } => Some(route.port),
            OutputTarget::Channel { .. } => {
                if out.vcs[ovc.index()].credits >= 1 {
                    Some(route.port)
                } else {
                    None
                }
            }
        }
    }

    /// Whether `(p, v)` can supply a *second* flit this cycle (same-packet
    /// back-to-back pair over a wide link; needs two credits).
    fn sa_pair_eligible(&self, r: usize, p: usize, v: usize) -> bool {
        let vc = &self.routers[r].inputs[p][v];
        let (Some(f0), Some(f1)) = (vc.fifo.front(), vc.fifo.get(1)) else {
            return false;
        };
        if f0.kind.is_tail() || f1.packet != f0.packet || f1.buffered >= self.now {
            return false;
        }
        let Some(route) = vc.route else { return false };
        let Some(ovc) = vc.out_vc else { return false };
        let out = &self.routers[r].outputs[route.port.index()];
        match out.target {
            OutputTarget::Sink { .. } => true,
            OutputTarget::Channel { .. } => out.vcs[ovc.index()].credits >= 2,
        }
    }

    fn switch_alloc(&mut self, r: usize) {
        let mut t = self.prof_start();
        let nports = self.routers[r].inputs.len();
        let nout = self.routers[r].outputs.len();
        let vcs_per_port = self.cfg.routers[r].vcs_per_port;
        let gate = self.sched.mode() == EngineMode::ActiveSet && nout <= 64;

        // Stage 1: one nomination per input port (plus a possible pair).
        // primary[p] = (vc, out_port); pair[p] = true when the nominated VC
        // can also supply its next same-packet flit. The vectors are
        // crate-level scratch (taken/returned) so the hot loop allocates
        // nothing; `nominated` records which outputs received a nomination
        // so stage 2 can skip outputs that cannot have a winner.
        let mut primary = std::mem::take(&mut self.scratch_primary);
        let mut pair = std::mem::take(&mut self.scratch_pair);
        let mut alt = std::mem::take(&mut self.scratch_alt);
        primary.clear();
        primary.resize(nports, None);
        pair.clear();
        pair.resize(nports, false);
        alt.clear();
        alt.resize(nports, None);
        let mut nominated_outs: u64 = if gate { 0 } else { !0 };
        for p in 0..nports {
            if gate && self.routers[r].port_occ[p] == 0 {
                continue; // no buffered flit ⇒ no eligible VC at this port
            }
            let nominated = self.routers[r].sa_stage1[p]
                .peek(vcs_per_port, |v| self.sa_eligible(r, p, v).is_some());
            if let Some(v) = nominated {
                let out = self.sa_eligible(r, p, v).expect("eligible");
                primary[p] = Some((v, out));
                if gate {
                    nominated_outs |= 1u64 << out.index();
                }
                pair[p] = self.routers[r].outputs[out.index()].lanes > 1
                    && self.sa_pair_eligible(r, p, v);
                if self.routers[r].outputs[out.index()].lanes > 1 && !pair[p] {
                    // Another VC of the same input port heading to the same
                    // output (the paper's case (a)/(c) combining).
                    alt[p] = (0..vcs_per_port)
                        .find(|&v2| v2 != v && self.sa_eligible(r, p, v2) == Some(out));
                }
                if self.measuring {
                    self.stats.routers[r].sa1_arbs += 1;
                }
            }
        }

        // Stage 2: per output port, primary + (for wide outputs) secondary.
        // An input port's split datapath supplies at most two flits/cycle.
        // Only stage-1 nominees can win the primary grant, so outputs
        // without a nomination are skipped outright (granting there is a
        // no-op: the arbiter pointer does not move without a winner).
        let mut port_sent = std::mem::take(&mut self.scratch_port_sent);
        port_sent.clear();
        port_sent.resize(nports, 0);
        let mut winners = std::mem::take(&mut self.scratch_winners);
        for o in 0..nout {
            if nominated_outs & (1u64 << (o & 63)) == 0 {
                continue;
            }
            winners.clear();
            let w1 = self.routers[r].outputs[o].sa_primary.grant(nports, |p| {
                port_sent[p] < 2 && primary[p].is_some_and(|(_, out)| out.index() == o)
            });
            let Some(p1) = w1 else { continue };
            let (v1, _) = primary[p1].expect("winner nominated");
            self.routers[r].sa_stage1[p1].advance_past(v1, vcs_per_port);
            winners.push((PortId(p1), VcId(v1)));
            if self.measuring {
                self.stats.routers[r].sa2_arbs += 1;
            }

            port_sent[p1] += 1;
            let lanes_o = self.routers[r].outputs[o].lanes;
            if lanes_o > 1 {
                if pair[p1] && port_sent[p1] < 2 {
                    // Same VC, next flit of the same packet (DSET pair).
                    winners.push((PortId(p1), VcId(v1)));
                    port_sent[p1] += 1;
                } else if alt[p1].is_some() && port_sent[p1] < 2 {
                    let v2 = alt[p1].expect("checked");
                    winners.push((PortId(p1), VcId(v2)));
                    port_sent[p1] += 1;
                } else {
                    // Different input port (the paper's case (b)/(f)): the
                    // second parallel p:1 arbiter scans every other port
                    // for *any* eligible VC heading to this output, not
                    // just the stage-1 nominee.
                    let mut second: Option<(usize, usize)> = None;
                    let grant = self.routers[r].outputs[o].sa_secondary.peek(nports, |p| {
                        if p == p1 || port_sent[p] >= 2 {
                            return false;
                        }
                        (0..vcs_per_port).any(|v| self.sa_eligible(r, p, v) == Some(PortId(o)))
                    });
                    if let Some(p2) = grant {
                        let v2 = (0..vcs_per_port)
                            .find(|&v| self.sa_eligible(r, p2, v) == Some(PortId(o)))
                            .expect("eligibility just checked");
                        self.routers[r].outputs[o]
                            .sa_secondary
                            .advance_past(p2, nports);
                        if primary[p2].is_some_and(|(v, out)| v == v2 && out.index() == o) {
                            // Its stage-1 nomination is being consumed here.
                            self.routers[r].sa_stage1[p2].advance_past(v2, vcs_per_port);
                            primary[p2] = None;
                        }
                        second = Some((p2, v2));
                    }
                    if let Some((p2, v2)) = second {
                        winners.push((PortId(p2), VcId(v2)));
                        port_sent[p2] += 1;
                    }
                }
                if self.measuring && winners.len() == 2 {
                    self.stats.routers[r].sa2_arbs += 1;
                }
            }
            // The primary winner's nomination is consumed.
            primary[p1] = None;

            let count = winners.len();
            // Lap only around non-empty commit batches: most outputs have
            // no winner, and a clock read per idle output would swamp the
            // quantity being measured.
            if count > 0 {
                t = self.prof_lap(t, Stage::SwitchAlloc);
            }
            // Indexing (not iterating) because commit_flit needs &mut self
            // while `winners` stays borrowed otherwise.
            #[allow(clippy::needless_range_loop)]
            for k in 0..count {
                let (wp, wv) = winners[k];
                self.commit_flit(r, wp, wv, PortId(o));
            }
            if count > 0 {
                t = self.prof_lap(t, Stage::SwitchTraverse);
            }
            // Link busy/dual accounting.
            if self.measuring {
                if let OutputTarget::Channel { link, .. } = self.routers[r].outputs[o].target {
                    let le = &mut self.stats.links[link.index()];
                    le.busy_cycles += 1;
                    if count == 2 {
                        le.dual_cycles += 1;
                    }
                }
            }
        }
        self.scratch_winners = winners;
        self.scratch_primary = primary;
        self.scratch_pair = pair;
        self.scratch_alt = alt;
        self.scratch_port_sent = port_sent;
        let _ = self.prof_lap(t, Stage::SwitchAlloc);
    }

    /// Moves one flit from input VC `(p, v)` through output port `o`:
    /// switch traversal now, link traversal next cycle, downstream buffer
    /// write (or retirement) at `now + 2`; credit upstream at `now + 1`.
    fn commit_flit(&mut self, r: usize, p: PortId, v: VcId, o: PortId) {
        let (flit, out_vc, is_tail, emptied) = {
            let vc = &mut self.routers[r].inputs[p.index()][v.index()];
            let flit = vc.fifo.pop_front().expect("winner has a flit");
            let out_vc = vc.out_vc.expect("winner has a grant");
            vc.sent_on_grant += 1;
            vc.head_wait = 0;
            let is_tail = flit.kind.is_tail();
            if is_tail {
                vc.release();
            }
            (flit, out_vc, is_tail, vc.fifo.is_empty())
        };
        self.routers[r].occupancy -= 1;
        self.routers[r].port_occ[p.index()] -= 1;
        if emptied {
            self.routers[r].busy_vcs -= 1;
        }
        if self.measuring {
            let ev = &mut self.stats.routers[r];
            ev.buffer_reads += 1;
            ev.xbar_flits += 1;
        }
        if self.tracer.is_some() {
            self.emit(TraceEvent::SaGrant {
                cycle: self.now,
                router: RouterId(r),
                in_port: p,
                in_vc: v,
                out_port: o,
                packet: flit.packet,
                seq: flit.seq,
            });
            self.emit(TraceEvent::BufferRead {
                cycle: self.now,
                router: RouterId(r),
                port: p,
                vc: v,
                packet: flit.packet,
                seq: flit.seq,
            });
        }

        // Credit to whoever feeds input port `p`.
        let up = match self.graph.router(RouterId(r)).ports[p.index()].kind {
            PortKind::Local { node } => Upstream::Node(node),
            PortKind::Link { into, .. } => {
                let l = self.graph.links()[into.index()];
                Upstream::Router(l.src, l.src_port)
            }
        };
        self.schedule(1, Event::Credit { up, vc: v });

        match self.routers[r].outputs[o.index()].target {
            OutputTarget::Sink { .. } => {
                self.schedule(2, Event::Retire { flit });
            }
            OutputTarget::Channel {
                link,
                dst,
                dst_port,
            } => {
                {
                    let ovc = &mut self.routers[r].outputs[o.index()].vcs[out_vc.index()];
                    debug_assert!(ovc.credits >= 1, "SA must check credits");
                    ovc.credits -= 1;
                    if is_tail {
                        ovc.owner = None;
                    }
                }
                if self.measuring {
                    self.stats.links[link.index()].flits += 1;
                }
                if let Some(ep) = self.epochs.as_deref_mut() {
                    ep.note_link_flit(link.index());
                }
                if self.tracer.is_some() {
                    self.emit(TraceEvent::LinkTraverse {
                        cycle: self.now,
                        link,
                        packet: flit.packet,
                        seq: flit.seq,
                    });
                }
                if self.faults.is_some() {
                    self.fault_send(link, dst, dst_port, out_vc, flit);
                } else {
                    self.schedule(
                        2,
                        Event::FlitArrive {
                            router: dst,
                            port: dst_port,
                            vc: out_vc,
                            flit,
                        },
                    );
                }
            }
        }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.cfg.topology)
            .field("now", &self.now)
            .field("in_flight", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LinkWidths, RouterCfg};
    use crate::topology::TopologyKind;

    fn small_mesh() -> Network {
        let cfg = NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 4,
                height: 4,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        );
        Network::new(cfg).expect("valid config")
    }

    fn run_until_drained(net: &mut Network, max: u64) {
        let mut cycles = 0;
        while net.in_flight() > 0 {
            net.step();
            cycles += 1;
            assert!(cycles < max, "network failed to drain within {max} cycles");
        }
    }

    #[test]
    fn single_packet_zero_load_latency_matches_ideal() {
        let mut net = small_mesh();
        net.set_measuring(true);
        // Node 0 (0,0) to node 15 (3,3): 6 hops.
        net.enqueue(NodeId(0), NodeId(15), Bits(1024), PacketClass::Data, 0);
        run_until_drained(&mut net, 200);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 1);
        let lat = d[0].retire - d[0].inject;
        // ideal = 3*6 + 4 + 5 = 27 with 6 flits, single lane.
        assert_eq!(net.ideal_latency(NodeId(0), NodeId(15), 6), 27);
        assert_eq!(lat, 27, "zero-load latency must equal the ideal");
    }

    #[test]
    fn one_flit_packet_latency() {
        let mut net = small_mesh();
        net.set_measuring(true);
        net.enqueue(NodeId(0), NodeId(1), Bits(64), PacketClass::Control, 0);
        run_until_drained(&mut net, 100);
        let d = net.drain_delivered();
        // 1 hop: 3*1 + 4 = 7 cycles.
        assert_eq!(d[0].retire - d[0].inject, 7);
    }

    #[test]
    fn self_delivery_works() {
        let mut net = small_mesh();
        net.enqueue(NodeId(5), NodeId(5), Bits(192), PacketClass::Data, 9);
        run_until_drained(&mut net, 100);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.tag, 9);
        assert_eq!(d[0].retire - d[0].inject, 4); // 0 hops: 3*0 + 4.
    }

    #[test]
    fn all_packets_delivered_under_load() {
        let mut net = small_mesh();
        net.set_measuring(true);
        // Saturating burst: every node sends to every other node.
        for s in 0..16 {
            for d in 0..16 {
                if s != d {
                    net.enqueue(NodeId(s), NodeId(d), Bits(1024), PacketClass::Data, 0);
                }
            }
        }
        run_until_drained(&mut net, 20_000);
        assert_eq!(net.stats().packets_retired, 16 * 15);
        assert_eq!(net.stats().flits_retired, 16 * 15 * 6);
    }

    #[test]
    fn flit_conservation_under_load() {
        let mut net = small_mesh();
        net.set_measuring(true);
        for s in 0..16 {
            net.enqueue(NodeId(s), NodeId(15 - s), Bits(1024), PacketClass::Data, 0);
        }
        run_until_drained(&mut net, 5_000);
        // After draining, every router must be empty.
        for r in &net.routers {
            assert_eq!(r.occupancy, 0);
            for port in &r.inputs {
                for vc in port {
                    assert!(vc.fifo.is_empty());
                    assert!(vc.route.is_none());
                    assert!(vc.out_vc.is_none());
                }
            }
            // All output VCs released and credits restored.
            for out in &r.outputs {
                for ovc in &out.vcs {
                    assert!(ovc.owner.is_none());
                    assert_eq!(ovc.credits, 5);
                }
            }
        }
    }

    #[test]
    fn wide_links_combine_flits() {
        // All-big network: every link 256b, flit 128b.
        let mut cfg = NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 4,
                height: 4,
            },
            RouterCfg::BIG,
            Bits(256),
            2.07,
        );
        cfg.flit_width = Bits(128);
        cfg.link_widths = LinkWidths::Uniform(Bits(256));
        let mut net = Network::new(cfg).expect("valid");
        net.set_measuring(true);
        net.enqueue(NodeId(0), NodeId(15), Bits(1024), PacketClass::Data, 0);
        run_until_drained(&mut net, 500);
        let d = net.drain_delivered();
        // 8 flits over 2 lanes: ideal = 3*6 + 4 + ceil(7/2) = 26. The
        // measured latency is 27: with 5-flit buffers the 4-cycle credit
        // round-trip cannot sustain 2 flits/cycle indefinitely, costing one
        // stall — still better than the single-lane serialization (29) and
        // far better than 8 flits at 192b would allow.
        assert_eq!(net.ideal_latency(NodeId(0), NodeId(15), 8), 26);
        let lat = d[0].retire - d[0].inject;
        assert_eq!(lat, 27);
        assert!(lat < 3 * 6 + 4 + 7, "dual-lane transfer beats single-lane");
        // Dual transmission must actually have happened.
        let wide = net.wide_links().to_vec();
        assert!(net.stats().combining_rate(&wide) > 0.0);
    }

    #[test]
    fn per_class_latency_accounting() {
        let mut net = small_mesh();
        net.set_measuring(true);
        net.enqueue(NodeId(0), NodeId(3), Bits(1024), PacketClass::Data, 0);
        net.enqueue(NodeId(4), NodeId(7), Bits(64), PacketClass::Control, 0);
        run_until_drained(&mut net, 500);
        let s = net.stats();
        assert_eq!(s.latency_by_class[0].count, 1);
        assert_eq!(s.latency_by_class[1].count, 1);
        assert_eq!(s.latency.count, 2);
    }

    #[test]
    fn measuring_gate_excludes_warmup_packets() {
        let mut net = small_mesh();
        net.enqueue(NodeId(0), NodeId(15), Bits(1024), PacketClass::Data, 0);
        run_until_drained(&mut net, 500);
        net.set_measuring(true);
        for _ in 0..10 {
            net.step();
        }
        let s = net.stats();
        assert_eq!(s.packets_retired, 0);
        assert_eq!(s.packets_offered, 0);
        assert_eq!(s.cycles, 10);
    }

    #[test]
    fn torus_traffic_drains() {
        let cfg = NetworkConfig::homogeneous(
            TopologyKind::Torus {
                width: 4,
                height: 4,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        );
        let mut net = Network::new(cfg).expect("valid");
        for s in 0..16 {
            for d in 0..16 {
                if s != d {
                    net.enqueue(NodeId(s), NodeId(d), Bits(1024), PacketClass::Data, 0);
                }
            }
        }
        run_until_drained(&mut net, 30_000);
        assert_eq!(net.drain_delivered().len(), 16 * 15);
    }

    #[test]
    fn cmesh_and_fbfly_deliver() {
        for kind in [
            TopologyKind::CMesh {
                width: 4,
                height: 4,
                concentration: 4,
            },
            TopologyKind::FlattenedButterfly {
                width: 4,
                height: 4,
                concentration: 4,
            },
        ] {
            let cfg = NetworkConfig::homogeneous(kind, RouterCfg::BASELINE, Bits(192), 2.2);
            let mut net = Network::new(cfg).expect("valid");
            for s in 0..64 {
                net.enqueue(NodeId(s), NodeId(63 - s), Bits(1024), PacketClass::Data, 0);
            }
            run_until_drained(&mut net, 30_000);
            assert_eq!(net.drain_delivered().len(), 64);
        }
    }

    #[test]
    fn buffer_utilization_is_positive_under_traffic() {
        let mut net = small_mesh();
        net.set_measuring(true);
        for s in 0..16 {
            for d in 0..16 {
                if s != d {
                    net.enqueue(NodeId(s), NodeId(d), Bits(1024), PacketClass::Data, 0);
                }
            }
        }
        run_until_drained(&mut net, 30_000);
        let s = net.stats();
        let total: f64 = (0..16).map(|r| s.buffer_utilization(r)).sum();
        assert!(total > 0.0);
        for r in 0..16 {
            assert!(s.buffer_utilization(r) <= 1.0);
        }
    }

    #[test]
    fn diagnostics_track_progress() {
        let mut net = small_mesh();
        let d0 = net.diagnostics();
        assert_eq!(d0, Diagnostics::default());
        net.enqueue(NodeId(0), NodeId(15), Bits(1024), PacketClass::Data, 0);
        let d1 = net.diagnostics();
        assert_eq!(d1.in_flight, 1);
        assert_eq!(d1.source_queued, 1);
        for _ in 0..5 {
            net.step();
        }
        let d2 = net.diagnostics();
        assert!(d2.buffered_flits > 0, "flits must be in the network");
        assert!(d2.oldest_packet_age >= 5);
        run_until_drained(&mut net, 200);
        assert_eq!(net.diagnostics().in_flight, 0);
        assert_eq!(net.diagnostics().buffered_flits, 0);
    }

    #[test]
    #[should_panic(expected = "size must be non-zero")]
    fn zero_size_packet_rejected() {
        let mut net = small_mesh();
        net.enqueue(NodeId(0), NodeId(1), Bits(0), PacketClass::Data, 0);
    }

    // --- fault layer ----------------------------------------------------

    use crate::fault::{HardFault, RetryPolicy};
    use crate::routing::degraded::degraded_routing;

    fn small_mesh_with(plan: FaultPlan) -> Network {
        let cfg = NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 4,
                height: 4,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        );
        Network::with_faults(cfg, plan).expect("valid config and plan")
    }

    fn all_pairs_burst(net: &mut Network) {
        for s in 0..16 {
            for d in 0..16 {
                if s != d {
                    net.enqueue(NodeId(s), NodeId(d), Bits(1024), PacketClass::Data, 0);
                }
            }
        }
    }

    fn link_between(net: &Network, a: RouterId, b: RouterId) -> LinkId {
        net.graph
            .links()
            .iter()
            .enumerate()
            .find(|(_, l)| (l.src, l.dst) == (a, b))
            .map(|(i, _)| LinkId(i))
            .expect("adjacent routers")
    }

    /// Regenerates, proves connected and installs a degraded table whenever
    /// a hard fault invalidated the routing (the runner loop clients use).
    fn reroute_if_stale(net: &mut Network) {
        if net.take_routing_stale() {
            let d = degraded_routing(net.graph(), net.dead_links(), net.dead_routers());
            net.install_routing(RoutingKind::FullTable(d.table));
        }
    }

    #[test]
    fn benign_fault_plan_is_cycle_identical() {
        let mut plain = small_mesh();
        let mut faulted = small_mesh_with(FaultPlan::default());
        all_pairs_burst(&mut plain);
        all_pairs_burst(&mut faulted);
        let mut got_plain = Vec::new();
        let mut got_faulted = Vec::new();
        let mut cycles = 0;
        while plain.in_flight() > 0 || faulted.in_flight() > 0 {
            plain.step();
            faulted.step();
            got_plain.extend(
                plain
                    .drain_delivered()
                    .iter()
                    .map(|d| (d.packet.id, d.retire)),
            );
            got_faulted.extend(
                faulted
                    .drain_delivered()
                    .iter()
                    .map(|d| (d.packet.id, d.retire)),
            );
            cycles += 1;
            assert!(cycles < 20_000);
        }
        assert_eq!(got_plain.len(), 16 * 15);
        assert_eq!(
            got_plain, got_faulted,
            "a benign fault plan must not perturb delivery schedules"
        );
        assert_eq!(faulted.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn transient_faults_retransmit_and_deliver_everything() {
        let mut net = small_mesh_with(FaultPlan::transient(2e-4, 42));
        net.set_measuring(true);
        all_pairs_burst(&mut net);
        run_until_drained(&mut net, 60_000);
        assert_eq!(net.drain_delivered().len(), 16 * 15);
        let c = net.fault_counters();
        assert!(
            c.flits_corrupted > 0,
            "ber 2e-4 over 192b flits must corrupt"
        );
        assert!(
            c.retransmissions >= c.retries && c.retries > 0,
            "every corruption triggers a go-back-N resend: {c:?}"
        );
        assert!(net.fault_error().is_none());
        assert!(net.drain_dropped().is_empty());
    }

    #[test]
    fn hopeless_link_reports_typed_unrecoverable_fault() {
        let mut plan = FaultPlan::transient(1.0, 3);
        plan.retry = RetryPolicy {
            max_attempts: 3,
            timeout: 8,
        };
        let mut net = small_mesh_with(plan);
        net.enqueue(NodeId(0), NodeId(15), Bits(192), PacketClass::Data, 0);
        let mut cycles = 0;
        while net.fault_error().is_none() {
            net.step();
            cycles += 1;
            assert!(cycles < 10_000, "retry exhaustion must surface, not hang");
        }
        let err = net.fault_error().expect("checked");
        assert_eq!(err.attempts, 3);
        assert!(err.packet.is_some());
        let s = err.to_string();
        assert!(s.contains("exhausted 3 transmission attempts"), "{s}");
    }

    #[test]
    fn hard_link_fault_reroutes_and_still_delivers() {
        let probe = small_mesh();
        let link = link_between(&probe, RouterId(5), RouterId(6));
        let mut plan = FaultPlan::default();
        plan.hard.push(HardFault {
            cycle: 60,
            kind: FaultKind::Link(link),
        });
        let mut net = small_mesh_with(plan);
        all_pairs_burst(&mut net);
        let mut cycles = 0u64;
        while net.in_flight() > 0 {
            net.step();
            reroute_if_stale(&mut net);
            cycles += 1;
            assert!(cycles < 60_000, "degraded run must drain");
        }
        assert_eq!(net.drain_delivered().len(), 16 * 15);
        assert!(net.drain_dropped().is_empty(), "mesh stays connected");
        assert_eq!(net.fault_counters().links_dead, 2, "both directions die");
        assert_eq!(net.dead_links().len(), 2);
    }

    #[test]
    fn dead_router_drops_its_traffic_and_spares_the_rest() {
        let mut plan = FaultPlan::default();
        plan.hard.push(HardFault {
            cycle: 0,
            kind: FaultKind::Router(RouterId(5)),
        });
        let mut net = small_mesh_with(plan);
        net.step();
        reroute_if_stale(&mut net);
        net.enqueue(NodeId(0), NodeId(5), Bits(1024), PacketClass::Data, 0);
        net.enqueue(NodeId(5), NodeId(0), Bits(1024), PacketClass::Data, 0);
        net.enqueue(NodeId(0), NodeId(15), Bits(1024), PacketClass::Data, 0);
        run_until_drained(&mut net, 5_000);
        assert_eq!(net.drain_delivered().len(), 1, "unaffected pair delivers");
        let dropped = net.drain_dropped();
        assert_eq!(dropped.len(), 2);
        let reasons: Vec<_> = dropped.iter().map(|d| d.reason).collect();
        assert!(reasons.contains(&DropReason::DestinationDead));
        assert!(reasons.contains(&DropReason::SourceDead));
        assert_eq!(net.fault_counters().routers_dead, 1);
    }

    #[test]
    fn unreachable_in_flight_packet_is_absorbed_not_hung() {
        // Cut the 2x2 mesh into {0,2} | {1,3} while a packet from n0 to n1
        // is in flight: it must come back as a typed drop, with every
        // buffer slot it held returned.
        let cfg = NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 2,
                height: 2,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        );
        let probe = Network::new(cfg.clone()).expect("valid");
        let mut plan = FaultPlan::default();
        for (a, b) in [(RouterId(0), RouterId(1)), (RouterId(2), RouterId(3))] {
            plan.hard.push(HardFault {
                cycle: 2,
                kind: FaultKind::Link(link_between(&probe, a, b)),
            });
        }
        let mut net = Network::with_faults(cfg, plan).expect("valid");
        net.enqueue(NodeId(0), NodeId(1), Bits(1024), PacketClass::Data, 7);
        let mut cycles = 0;
        while net.in_flight() > 0 {
            net.step();
            reroute_if_stale(&mut net);
            cycles += 1;
            assert!(cycles < 2_000, "unreachable packet must be absorbed");
        }
        let dropped = net.drain_dropped();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].packet.tag, 7);
        assert_eq!(dropped[0].reason, DropReason::Unreachable);
        assert!(net.drain_delivered().is_empty());
        // Absorption must have restored every credit.
        for r in &net.routers {
            assert_eq!(r.occupancy, 0);
        }
    }

    #[test]
    fn stall_report_names_stuck_packets() {
        // A packet wedged against a dead destination router (mid-stream, so
        // it is not droppable at injection) shows up in the report.
        let mut plan = FaultPlan::default();
        plan.hard.push(HardFault {
            cycle: 3,
            kind: FaultKind::Router(RouterId(15)),
        });
        let mut net = small_mesh_with(plan);
        net.enqueue(NodeId(0), NodeId(15), Bits(1024), PacketClass::Data, 0);
        for _ in 0..200 {
            net.step();
        }
        assert_eq!(net.in_flight(), 1, "packet is wedged, not delivered");
        let report = net.stall_report();
        assert_eq!(report.in_flight, 1);
        assert_eq!(report.stuck.len(), 1);
        assert_eq!(report.stuck[0].dst, NodeId(15));
        assert!(report.stuck[0].age > 100);
        let text = report.to_string();
        assert!(text.contains("no progress"), "{text}");
        assert!(text.contains("n15"), "{text}");
    }

    // --- end-to-end recovery --------------------------------------------

    use crate::fault::RecoveryPolicy;

    /// Steps until both the network and the retention buffers drain.
    fn run_until_recovered(net: &mut Network, max: u64) -> Vec<Delivered> {
        let mut delivered = Vec::new();
        let mut cycles = 0;
        while net.in_flight() > 0 || net.recovery_pending() > 0 {
            net.step();
            reroute_if_stale(net);
            delivered.extend(net.drain_delivered());
            cycles += 1;
            assert!(cycles < max, "recovery failed to converge within {max}");
        }
        delivered
    }

    #[test]
    fn recovery_reinjects_wedged_packets_after_router_kill() {
        let mut plan = FaultPlan::default();
        plan.hard.push(HardFault {
            cycle: 40,
            kind: FaultKind::Router(RouterId(5)),
        });
        plan.recovery = Some(RecoveryPolicy::default());
        let mut net = small_mesh_with(plan);
        all_pairs_burst(&mut net);
        let delivered = run_until_recovered(&mut net, 60_000);
        // Every pair whose source and destination survive delivers exactly
        // once (pairs touching node 5 may have delivered before the kill).
        let mut pairs: Vec<(NodeId, NodeId)> = delivered
            .iter()
            .map(|d| (d.packet.src, d.packet.dst))
            .collect();
        pairs.sort_unstable();
        let before = pairs.len();
        pairs.dedup();
        assert_eq!(before, pairs.len(), "duplicate delivery reached a client");
        for s in 0..16 {
            for d in 0..16 {
                if s != d && s != 5 && d != 5 {
                    assert!(
                        pairs.contains(&(NodeId(s), NodeId(d))),
                        "surviving pair n{s}->n{d} was never delivered"
                    );
                }
            }
        }
        // Every permanent loss names a dead endpoint; surviving-pair drops
        // are transient (recovered by reinjection) — never silently lost.
        let dropped = net.drain_dropped();
        for d in &dropped {
            let touches_dead = d.packet.src == NodeId(5) || d.packet.dst == NodeId(5);
            assert!(
                d.recoverable || touches_dead,
                "permanent loss on a surviving pair: {d:?}"
            );
        }
        // Full ledger: every offered packet either delivered or was
        // recorded as a permanent loss.
        let permanent = dropped.iter().filter(|d| !d.recoverable).count();
        assert_eq!(delivered.len() + permanent, 16 * 15);
        let counters = net.recovery_counters();
        assert!(counters.reinjections > 0, "the kill must wedge something");
        assert_eq!(
            counters.acks,
            delivered.len() as u64,
            "one ack per delivery"
        );
    }

    #[test]
    fn recovery_keeps_benign_plans_cycle_identical() {
        let plan = FaultPlan {
            recovery: Some(RecoveryPolicy::default()),
            ..FaultPlan::default()
        };
        let mut plain = small_mesh();
        let mut recovering = small_mesh_with(plan);
        all_pairs_burst(&mut plain);
        all_pairs_burst(&mut recovering);
        let mut got_plain = Vec::new();
        let mut got_rec = Vec::new();
        let mut cycles = 0;
        while plain.in_flight() > 0 || recovering.in_flight() > 0 {
            plain.step();
            recovering.step();
            got_plain.extend(
                plain
                    .drain_delivered()
                    .iter()
                    .map(|d| (d.packet.id, d.retire)),
            );
            got_rec.extend(
                recovering
                    .drain_delivered()
                    .iter()
                    .map(|d| (d.packet.id, d.retire)),
            );
            cycles += 1;
            assert!(cycles < 20_000);
        }
        assert_eq!(
            got_plain, got_rec,
            "an idle recovery layer must not perturb delivery schedules"
        );
        let counters = recovering.recovery_counters();
        assert_eq!(counters.reinjections, 0);
        assert_eq!(counters.duplicates_suppressed, 0);
        assert_eq!(counters.retention_stalls, 0);
        assert_eq!(counters.lost, 0);
    }

    #[test]
    fn recovery_gives_up_across_a_partition() {
        // Cut the 2x2 mesh into {0,2} | {1,3}: a packet from n0 to n1 is
        // reinjected until the budget runs out, then reported permanently
        // lost — bounded, typed, and drained.
        let cfg = NetworkConfig::homogeneous(
            TopologyKind::Mesh {
                width: 2,
                height: 2,
            },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        );
        let probe = Network::new(cfg.clone()).expect("valid");
        let mut plan = FaultPlan::default();
        for (a, b) in [(RouterId(0), RouterId(1)), (RouterId(2), RouterId(3))] {
            plan.hard.push(HardFault {
                cycle: 2,
                kind: FaultKind::Link(link_between(&probe, a, b)),
            });
        }
        plan.recovery = Some(RecoveryPolicy {
            retry: RetryPolicy {
                max_attempts: 3,
                timeout: 64,
            },
            retention: 4,
        });
        let mut net = Network::with_faults(cfg, plan).expect("valid");
        net.enqueue(NodeId(0), NodeId(1), Bits(1024), PacketClass::Data, 7);
        let delivered = run_until_recovered(&mut net, 10_000);
        assert!(delivered.is_empty());
        let dropped = net.drain_dropped();
        let exhausted: Vec<_> = dropped
            .iter()
            .filter(|d| d.reason == DropReason::RecoveryExhausted)
            .collect();
        assert_eq!(exhausted.len(), 1, "{dropped:?}");
        assert!(!exhausted[0].recoverable);
        assert!(dropped
            .iter()
            .filter(|d| d.reason == DropReason::Unreachable)
            .all(|d| d.recoverable));
        let counters = net.recovery_counters();
        assert_eq!(counters.reinjections, 2, "attempts 2 and 3");
        assert_eq!(counters.lost, 1);
        assert_eq!(net.recovery_pending(), 0);
    }
}
