//! Text rendering of epoch time-series embedded in sweep results.
//!
//! `heteronoc report <name>` loads `results/<name>.json` (written by
//! [`crate::sweep::SweepOutcome::write_json`]) and, for every point that
//! carries an epoch time-series, prints a per-epoch table plus a
//! router-grid heatmap of mean buffer occupancy — the textual analogue of
//! the paper's center-vs-edge utilization figures (Figs. 1–2).

use crate::json::Json;

/// Shade ramp for heatmaps, darkest last.
const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Maps a 0.0–1.0 value onto the shade ramp. Values that are nonzero but
/// would round to blank get the lightest visible mark, so a near-idle
/// router is distinguishable from a dead one.
pub fn shade(v: f64) -> char {
    let v = if v.is_finite() {
        v.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let i = (v * (SHADES.len() - 1) as f64).round() as usize;
    if i == 0 && v > 1e-3 {
        return SHADES[1];
    }
    SHADES[i.min(SHADES.len() - 1)]
}

/// Renders `values` (one per router, row-major) as a `side`-wide grid of
/// shade characters, one router per cell.
pub fn heatmap_grid(values: &[f64], side: usize) -> String {
    let mut out = String::new();
    for row in values.chunks(side.max(1)) {
        out.push_str("    ");
        for &v in row {
            out.push(shade(v));
            out.push(' ');
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

fn nums(v: Option<&Json>) -> Vec<f64> {
    v.and_then(Json::as_arr)
        .map(|a| a.iter().filter_map(Json::as_f64).collect())
        .unwrap_or_default()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn pctl(epoch: &Json, component: &str, p: &str) -> u64 {
    epoch
        .get("latency")
        .and_then(|l| l.get(component))
        .and_then(|c| c.get(p))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Renders one point's epoch time-series: a per-epoch table followed by a
/// heatmap of mean buffer occupancy over the whole run. `label` heads the
/// section; rows beyond `max_rows` are elided with a note.
pub fn render_epochs(label: &str, epochs: &[Json], max_rows: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("point {label}: {} epochs\n", epochs.len()));
    out.push_str(&format!(
        "  {:>5} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
        "epoch", "start", "end", "inj", "ej", "occ", "util", "maxutl", "p50", "p99"
    ));
    let shown = epochs.len().min(max_rows);
    for (i, e) in epochs.iter().take(shown).enumerate() {
        let occ = nums(e.get("buffer_occ"));
        let util = nums(e.get("link_util"));
        let max_util = util.iter().copied().fold(0.0, f64::max);
        out.push_str(&format!(
            "  {:>5} {:>9} {:>9} {:>7} {:>7} {:>7.3} {:>7.3} {:>7.3} {:>7} {:>7}\n",
            i,
            e.get("start").and_then(Json::as_u64).unwrap_or(0),
            e.get("end").and_then(Json::as_u64).unwrap_or(0),
            e.get("injected").and_then(Json::as_u64).unwrap_or(0),
            e.get("ejected").and_then(Json::as_u64).unwrap_or(0),
            mean(&occ),
            mean(&util),
            max_util,
            pctl(e, "total", "p50"),
            pctl(e, "total", "p99"),
        ));
    }
    if shown < epochs.len() {
        out.push_str(&format!(
            "  … {} more epochs elided\n",
            epochs.len() - shown
        ));
    }

    // Run-wide mean occupancy per router, drawn as a square grid when the
    // router count is a perfect square (meshes/tori), one row otherwise.
    let mut totals: Vec<f64> = Vec::new();
    for e in epochs {
        let occ = nums(e.get("buffer_occ"));
        if totals.is_empty() {
            totals = vec![0.0; occ.len()];
        }
        for (t, v) in totals.iter_mut().zip(&occ) {
            *t += v;
        }
    }
    if !totals.is_empty() {
        for t in &mut totals {
            *t /= epochs.len() as f64;
        }
        let n = totals.len();
        let side = (n as f64).sqrt().round() as usize;
        let side = if side * side == n { side } else { n };
        out.push_str("  mean buffer occupancy (router grid, ' '=0 '@'=1):\n");
        out.push_str(&heatmap_grid(&totals, side));
    }
    out
}

/// Renders every epoch-carrying point of a sweep-results document
/// (`results/<name>.json` parsed into [`Json`]).
///
/// # Errors
/// A message when the document has no `points` array or no point carries
/// an epoch time-series.
pub fn render_results(doc: &Json, max_rows: usize) -> Result<String, String> {
    let points = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("results file has no \"points\" array")?;
    let mut out = String::new();
    let mut rendered = 0usize;
    for p in points {
        let label = p.get("label").and_then(Json::as_str).unwrap_or("?");
        if let Some(epochs) = p.get("epochs").and_then(Json::as_arr) {
            if !epochs.is_empty() {
                out.push_str(&render_epochs(label, epochs, max_rows));
                rendered += 1;
            }
        }
    }
    if rendered == 0 {
        return Err(
            "no point carries an epoch time-series (re-run the sweep with --epochs N)".into(),
        );
    }
    Ok(out)
}

/// Renders a campaign manifest (`results/campaigns/<name>.json`) as
/// per-layout reliability-curve tables — one row per dead-link count with
/// delivery ratio (mean and worst sample), p99 latency relative to the
/// fault-free baseline, reconfiguration downtime and recovery-traffic
/// overhead. Partial manifests (a campaign killed mid-run) render the
/// completed cells and show the remaining count.
///
/// # Errors
/// A message when the document is not a campaign manifest.
pub fn render_campaign(doc: &Json) -> Result<String, String> {
    if doc.get("kind").and_then(Json::as_str) != Some("campaign") {
        return Err("document is not a campaign manifest (no kind: \"campaign\")".into());
    }
    let name = doc.get("name").and_then(Json::as_str).unwrap_or("?");
    let total = doc.get("total").and_then(Json::as_u64).unwrap_or(0);
    let completed = doc.get("completed").and_then(Json::as_u64).unwrap_or(0);
    let curves = doc
        .get("curves")
        .and_then(Json::as_arr)
        .ok_or("campaign manifest has no \"curves\" array")?;

    let fnum = |row: &Json, key: &str, width: usize, prec: usize| -> String {
        match row.get(key).and_then(Json::as_f64) {
            Some(v) if v.is_finite() => format!("{v:>width$.prec$}"),
            _ => format!("{:>width$}", "-"),
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "campaign {name}: {completed}/{total} points complete\n"
    ));
    let mut current = String::new();
    for row in curves {
        let layout = row.get("layout").and_then(Json::as_str).unwrap_or("?");
        if layout != current {
            current = layout.to_owned();
            out.push_str(&format!(
                "\n{layout}\n{:>6}{:>7}{:>7}{:>10}{:>10}{:>9}{:>11}{:>10}{:>9}\n",
                "kills",
                "plans",
                "failed",
                "deliv",
                "worst",
                "p99x",
                "downtime",
                "ovh f/p",
                "reroute"
            ));
        }
        let kills = row.get("kills").and_then(Json::as_u64).unwrap_or(0);
        let plans = row.get("plans").and_then(Json::as_u64).unwrap_or(0);
        let failed = row.get("failed").and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "{kills:>6}{plans:>7}{failed:>7}{}{}{}{}{}{}\n",
            fnum(row, "delivery_mean", 10, 4),
            fnum(row, "delivery_min", 10, 4),
            fnum(row, "p99_x_baseline", 9, 2),
            fnum(row, "downtime_cycles", 11, 0),
            fnum(row, "recovery_overhead", 10, 3),
            fnum(row, "reroutes_mean", 9, 1),
        ));
    }
    if completed < total {
        out.push_str(&format!(
            "\n{} points pending — re-run `heteronoc campaign` to resume\n",
            total - completed
        ));
    }
    Ok(out)
}

/// Renders two sweep-results documents (`results/<name>.json`) side by
/// side: one row per point label present in both, with latency, power and
/// throughput from each file and the relative deltas, followed by a list
/// of unmatched labels. Backs `heteronoc report --compare a.json b.json`;
/// the delta/threshold conventions match [`crate::trajectory::compare`]
/// (a negative latency/power delta is an improvement).
///
/// # Errors
/// A message when either document has no `points` array or the two sweeps
/// share no point labels.
pub fn compare_sweeps(a: &Json, b: &Json) -> Result<String, String> {
    let points = |doc: &Json, which: &str| -> Result<Vec<Json>, String> {
        doc.get("points")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .ok_or_else(|| format!("{which} document has no \"points\" array (not a sweep result)"))
    };
    let a_name = a.get("name").and_then(Json::as_str).unwrap_or("a");
    let b_name = b.get("name").and_then(Json::as_str).unwrap_or("b");
    let a_points = points(a, "first")?;
    let b_points = points(b, "second")?;

    let label = |p: &Json| p.get("label").and_then(Json::as_str).map(str::to_owned);
    let metric = |p: &Json, key: &str| -> Option<f64> {
        p.get(key).and_then(Json::as_f64).filter(|v| v.is_finite())
    };
    let pct = |old: Option<f64>, new: Option<f64>| -> String {
        match (old, new) {
            (Some(o), Some(n)) if o.abs() > f64::EPSILON => {
                format!("{:>+8.1}%", 100.0 * (n - o) / o)
            }
            _ => format!("{:>9}", "-"),
        }
    };
    let num = |v: Option<f64>, width: usize, prec: usize| -> String {
        match v {
            Some(v) => format!("{v:>width$.prec$}"),
            None => format!("{:>width$}", "-"),
        }
    };

    let mut out = format!("sweep compare: {a_name} (old) vs {b_name} (new)\n");
    out.push_str(&format!(
        "{:<28} {:>9} {:>9} {:>9}  {:>8} {:>8} {:>9}  {:>8} {:>8} {:>9}\n",
        "point",
        "lat_ns A",
        "lat_ns B",
        "Δlat",
        "pwr_w A",
        "pwr_w B",
        "Δpwr",
        "thr A",
        "thr B",
        "Δthr"
    ));
    let mut matched = 0usize;
    let mut only_a: Vec<String> = Vec::new();
    for pa in &a_points {
        let Some(l) = label(pa) else { continue };
        let Some(pb) = b_points.iter().find(|p| label(p).as_deref() == Some(&l)) else {
            only_a.push(l);
            continue;
        };
        matched += 1;
        let (la, lb) = (metric(pa, "latency_ns"), metric(pb, "latency_ns"));
        let (wa, wb) = (metric(pa, "power_w"), metric(pb, "power_w"));
        let (ta, tb) = (metric(pa, "throughput"), metric(pb, "throughput"));
        let sat = |p: &Json| p.get("saturated").and_then(Json::as_bool) == Some(true);
        let mark = match (sat(pa), sat(pb)) {
            (true, true) => " [sat both]",
            (true, false) => " [sat A]",
            (false, true) => " [sat B]",
            (false, false) => "",
        };
        out.push_str(&format!(
            "{l:<28} {} {} {}  {} {} {}  {} {} {}{mark}\n",
            num(la, 9, 2),
            num(lb, 9, 2),
            pct(la, lb),
            num(wa, 8, 2),
            num(wb, 8, 2),
            pct(wa, wb),
            num(ta, 8, 4),
            num(tb, 8, 4),
            pct(ta, tb),
        ));
    }
    if matched == 0 {
        return Err("the two sweeps share no point labels — nothing to compare".into());
    }
    let only_b: Vec<String> = b_points
        .iter()
        .filter_map(&label)
        .filter(|l| !a_points.iter().any(|p| label(p).as_deref() == Some(l)))
        .collect();
    for l in &only_a {
        out.push_str(&format!("{l:<28} (first sweep only)\n"));
    }
    for l in &only_b {
        out.push_str(&format!("{l:<28} (second sweep only)\n"));
    }
    out.push_str(&format!(
        "{matched} matched point(s), {} unmatched\n",
        only_a.len() + only_b.len()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(start: u64, end: u64, occ: Vec<f64>) -> Json {
        Json::obj(vec![
            ("start", Json::Int(start as i64)),
            ("end", Json::Int(end as i64)),
            ("injected", Json::Int(4)),
            ("ejected", Json::Int(3)),
            (
                "buffer_occ",
                Json::Arr(occ.into_iter().map(Json::Num).collect()),
            ),
            ("vc_busy", Json::Arr(vec![])),
            (
                "link_util",
                Json::Arr(vec![Json::Num(0.25), Json::Num(0.75)]),
            ),
            (
                "latency",
                Json::obj(vec![(
                    "total",
                    Json::obj(vec![
                        ("p50", Json::Int(15)),
                        ("p95", Json::Int(31)),
                        ("p99", Json::Int(63)),
                    ]),
                )]),
            ),
        ])
    }

    #[test]
    fn shade_ramp_is_monotone() {
        assert_eq!(shade(0.0), ' ');
        assert_eq!(shade(1.0), '@');
        assert_eq!(shade(f64::NAN), ' ');
        let mut last = 0usize;
        for i in 0..=10 {
            let c = shade(i as f64 / 10.0);
            let pos = SHADES.iter().position(|&s| s == c).unwrap();
            assert!(pos >= last);
            last = pos;
        }
    }

    #[test]
    fn grid_is_square_for_square_counts() {
        let g = heatmap_grid(&[0.0, 0.5, 0.9, 1.0], 2);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains('@'));
    }

    #[test]
    fn renders_table_and_heatmap() {
        let e = vec![
            epoch(0, 100, vec![0.1, 0.9, 0.2, 0.4]),
            epoch(100, 200, vec![0.3, 0.7, 0.2, 0.4]),
        ];
        let text = render_epochs("mesh|ur|s1|r0.02", &e, 64);
        assert!(text.contains("2 epochs"));
        assert!(text.contains("p99"));
        assert!(text.contains("63"));
        assert!(text.contains("mean buffer occupancy"));
    }

    #[test]
    fn elides_long_series() {
        let e: Vec<Json> = (0..10)
            .map(|i| epoch(i * 10, (i + 1) * 10, vec![0.5]))
            .collect();
        let text = render_epochs("p", &e, 3);
        assert!(text.contains("7 more epochs elided"));
    }

    #[test]
    fn render_results_requires_epochs() {
        let doc = Json::obj(vec![(
            "points",
            Json::Arr(vec![Json::obj(vec![
                ("label", Json::Str("a".into())),
                ("epochs", Json::Null),
            ])]),
        )]);
        assert!(render_results(&doc, 10).is_err());

        let doc = Json::obj(vec![(
            "points",
            Json::Arr(vec![Json::obj(vec![
                ("label", Json::Str("a".into())),
                ("epochs", Json::Arr(vec![epoch(0, 50, vec![0.2])])),
            ])]),
        )]);
        let text = render_results(&doc, 10).unwrap();
        assert!(text.contains("point a"));
    }
    fn sweep_doc(name: &str, pts: Vec<(&str, f64, f64, f64, bool)>) -> Json {
        Json::obj(vec![
            ("name", Json::Str(name.into())),
            (
                "points",
                Json::Arr(
                    pts.into_iter()
                        .map(|(l, lat, pwr, thr, sat)| {
                            Json::obj(vec![
                                ("label", Json::Str(l.into())),
                                ("latency_ns", Json::Num(lat)),
                                ("power_w", Json::Num(pwr)),
                                ("throughput", Json::Num(thr)),
                                ("saturated", Json::Bool(sat)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn compare_sweeps_renders_matched_deltas_and_unmatched_labels() {
        let a = sweep_doc(
            "old",
            vec![
                ("m|r0.01", 20.0, 10.0, 0.01, false),
                ("m|r0.05", 80.0, 30.0, 0.05, true),
                ("gone", 1.0, 1.0, 0.001, false),
            ],
        );
        let b = sweep_doc(
            "new",
            vec![
                ("m|r0.01", 22.0, 9.0, 0.01, false),
                ("m|r0.05", 80.0, 30.0, 0.05, true),
                ("fresh", 1.0, 1.0, 0.001, false),
            ],
        );
        let text = compare_sweeps(&a, &b).unwrap();
        assert!(text.contains("old (old) vs new (new)"), "{text}");
        // +10% latency, -10% power on the matched low-rate point.
        assert!(text.contains("+10.0%"), "{text}");
        assert!(text.contains("-10.0%"), "{text}");
        assert!(text.contains("[sat both]"), "{text}");
        assert!(text.contains("gone") && text.contains("(first sweep only)"));
        assert!(text.contains("fresh") && text.contains("(second sweep only)"));
        assert!(text.contains("2 matched point(s), 2 unmatched"), "{text}");
    }

    #[test]
    fn compare_sweeps_rejects_non_sweeps_and_disjoint_labels() {
        let a = sweep_doc("a", vec![("x", 1.0, 1.0, 0.01, false)]);
        let b = sweep_doc("b", vec![("y", 1.0, 1.0, 0.01, false)]);
        assert!(compare_sweeps(&a, &b)
            .unwrap_err()
            .contains("no point labels"));
        let bad = Json::obj(vec![("name", Json::Str("n".into()))]);
        assert!(compare_sweeps(&bad, &a).unwrap_err().contains("points"));
    }
}
