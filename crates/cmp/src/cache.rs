//! Set-associative cache with true-LRU replacement, generic over per-line
//! metadata (MESI state for L1s, a dirty bit for L2 banks).

use std::collections::VecDeque;

/// A set-associative cache of block numbers with per-line metadata `T`.
#[derive(Clone, Debug)]
pub struct Cache<T> {
    sets: Vec<VecDeque<Line<T>>>,
    ways: usize,
}

#[derive(Clone, Debug)]
struct Line<T> {
    block: u64,
    meta: T,
}

impl<T> Cache<T> {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "associativity must be non-zero");
        Self {
            sets: (0..sets).map(|_| VecDeque::with_capacity(ways)).collect(),
            ways,
        }
    }

    /// Builds a cache from a geometry: `capacity_bytes / block_bytes /
    /// ways` sets.
    ///
    /// # Examples
    /// ```
    /// // The paper's L1: 32 KB, 4-way, 128 B blocks -> 64 sets.
    /// let c: heteronoc_cmp::cache::Cache<()> =
    ///     heteronoc_cmp::cache::Cache::with_geometry(32 * 1024, 128, 4);
    /// assert_eq!(c.num_sets(), 64);
    /// ```
    pub fn with_geometry(capacity_bytes: usize, block_bytes: usize, ways: usize) -> Self {
        let sets = capacity_bytes / block_bytes / ways;
        Self::new(sets.max(1), ways)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    /// Looks up `block`, promoting it to MRU on hit.
    pub fn get_mut(&mut self, block: u64) -> Option<&mut T> {
        let s = self.set_of(block);
        let set = &mut self.sets[s];
        let idx = set.iter().position(|l| l.block == block)?;
        let line = set.remove(idx).expect("index valid");
        set.push_back(line);
        set.back_mut().map(|l| &mut l.meta)
    }

    /// Looks up `block` without touching LRU order.
    pub fn peek(&self, block: u64) -> Option<&T> {
        let s = self.set_of(block);
        self.sets[s]
            .iter()
            .find(|l| l.block == block)
            .map(|l| &l.meta)
    }

    /// True when the block is resident.
    pub fn contains(&self, block: u64) -> bool {
        self.peek(block).is_some()
    }

    /// Inserts `block` as MRU, evicting the LRU line of the set if full.
    /// Returns the evicted `(block, meta)` if any.
    ///
    /// # Panics
    /// Panics if the block is already resident (use [`Cache::get_mut`] to
    /// update an existing line).
    pub fn insert(&mut self, block: u64, meta: T) -> Option<(u64, T)> {
        assert!(!self.contains(block), "block {block} already resident");
        let s = self.set_of(block);
        let set = &mut self.sets[s];
        let evicted = if set.len() == self.ways {
            set.pop_front().map(|l| (l.block, l.meta))
        } else {
            None
        };
        set.push_back(Line { block, meta });
        evicted
    }

    /// Removes `block` if resident, returning its metadata.
    pub fn invalidate(&mut self, block: u64) -> Option<T> {
        let s = self.set_of(block);
        let set = &mut self.sets[s];
        let idx = set.iter().position(|l| l.block == block)?;
        set.remove(idx).map(|l| l.meta)
    }

    /// The block that would be evicted if `block` were inserted now.
    pub fn eviction_candidate(&self, block: u64) -> Option<u64> {
        let s = self.set_of(block);
        let set = &self.sets[s];
        if set.len() == self.ways {
            set.front().map(|l| l.block)
        } else {
            None
        }
    }

    /// Iterates over all resident `(block, &meta)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.sets.iter().flatten().map(|l| (l.block, &l.meta))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(VecDeque::len).sum()
    }

    /// True when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c: Cache<u32> = Cache::new(4, 2);
        assert!(c.insert(8, 1).is_none());
        assert!(c.contains(8));
        assert_eq!(c.get_mut(8), Some(&mut 1));
        assert!(!c.contains(12)); // same set, different block
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: Cache<&str> = Cache::new(1, 2);
        c.insert(0, "a");
        c.insert(1, "b");
        // Touch 0 so 1 becomes LRU.
        c.get_mut(0);
        let evicted = c.insert(2, "c").expect("set full");
        assert_eq!(evicted, (1, "b"));
        assert!(c.contains(0) && c.contains(2));
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c: Cache<()> = Cache::new(1, 2);
        c.insert(0, ());
        c.insert(1, ());
        c.peek(0);
        let evicted = c.insert(2, ()).expect("full");
        assert_eq!(evicted.0, 0, "peek must not promote block 0");
    }

    #[test]
    fn invalidate_frees_way() {
        let mut c: Cache<u8> = Cache::new(1, 1);
        c.insert(5, 9);
        assert_eq!(c.invalidate(5), Some(9));
        assert!(c.insert(6, 1).is_none());
        assert_eq!(c.invalidate(5), None);
    }

    #[test]
    fn eviction_candidate_matches_insert() {
        let mut c: Cache<()> = Cache::new(2, 2);
        c.insert(0, ());
        c.insert(2, ());
        assert_eq!(c.eviction_candidate(4), Some(0));
        assert_eq!(c.eviction_candidate(1), None); // other set not full
        let ev = c.insert(4, ()).unwrap();
        assert_eq!(ev.0, 0);
    }

    #[test]
    fn geometry_paper_configs() {
        // L1: 32KB / 128B / 4-way = 64 sets; L2 bank: 1MB / 128B / 16-way
        // = 512 sets.
        let l1: Cache<()> = Cache::with_geometry(32 * 1024, 128, 4);
        assert_eq!(l1.num_sets(), 64);
        let l2: Cache<()> = Cache::with_geometry(1024 * 1024, 128, 16);
        assert_eq!(l2.num_sets(), 512);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut c: Cache<()> = Cache::new(2, 2);
        c.insert(3, ());
        c.insert(3, ());
    }
}
