//! Property-based integration tests (proptest): conservation and protocol
//! invariants that must hold for *any* traffic, placement or configuration
//! in range.

use proptest::prelude::*;

use heteronoc::noc::config::{LinkWidths, NetworkConfig, RouterCfg};
use heteronoc::noc::network::Network;
use heteronoc::noc::packet::PacketClass;
use heteronoc::noc::routing::RoutingKind;
use heteronoc::noc::topology::TopologyKind;
use heteronoc::noc::types::{Bits, NodeId, RouterId};
use heteronoc::{mesh_config, Layout, Placement};

/// Drains a network, asserting progress.
fn drain(net: &mut Network, max: u64) {
    let mut steps = 0;
    while net.in_flight() > 0 {
        net.step();
        steps += 1;
        assert!(steps < max, "network failed to drain in {max} cycles");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every packet injected into any paper layout is delivered exactly
    /// once, with all its flits, for arbitrary source/destination batches.
    #[test]
    fn packets_always_delivered(
        pairs in prop::collection::vec((0usize..64, 0usize..64), 1..60),
        layout_idx in 0usize..7,
        data in prop::collection::vec(any::<bool>(), 60),
    ) {
        let layout = &Layout::all_seven()[layout_idx];
        let cfg = mesh_config(layout);
        let flit_width = cfg.flit_width;
        let mut net = Network::new(cfg).expect("valid layout");
        net.set_measuring(true);
        let mut expect_flits = 0u64;
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let size = if data[i % data.len()] { Bits(1024) } else { Bits(64) };
            expect_flits += u64::from(size.flits(flit_width));
            net.enqueue(NodeId(s), NodeId(d), size, PacketClass::Data, i as u64);
        }
        drain(&mut net, 200_000);
        prop_assert_eq!(net.stats().packets_retired, pairs.len() as u64);
        prop_assert_eq!(net.stats().flits_retired, expect_flits);
        // Delivered set matches the enqueued multiset of tags.
        let mut tags: Vec<u64> = net.drain_delivered().iter().map(|d| d.packet.tag).collect();
        tags.sort_unstable();
        let expect: Vec<u64> = (0..pairs.len() as u64).collect();
        prop_assert_eq!(tags, expect);
    }

    /// Network latency is never below the contention-free ideal.
    #[test]
    fn latency_never_beats_ideal(
        pairs in prop::collection::vec((0usize..64, 0usize..64), 1..40),
    ) {
        let mut net = Network::new(mesh_config(&Layout::DiagonalBL)).expect("valid");
        net.set_measuring(true);
        net.set_record_packets(true);
        for (i, &(s, d)) in pairs.iter().enumerate() {
            net.enqueue(NodeId(s), NodeId(d), Bits(1024), PacketClass::Data, i as u64);
        }
        drain(&mut net, 200_000);
        for rec in &net.stats().records {
            prop_assert!(
                rec.network() >= rec.ideal,
                "packet {}->{} took {} cycles, ideal {}",
                rec.src, rec.dst, rec.network(), rec.ideal
            );
        }
    }

    /// Arbitrary big-router placements (with the +BL link rule) always form
    /// valid, deadlock-free networks under random traffic.
    #[test]
    fn arbitrary_placements_build_and_drain(
        big_indices in prop::collection::btree_set(0usize..16, 0..=16),
        pairs in prop::collection::vec((0usize..16, 0usize..16), 1..30),
    ) {
        let big: Vec<RouterId> = big_indices.iter().map(|&i| RouterId(i)).collect();
        let placement = Placement::from_big_routers(4, 4, &big);
        let cfg = NetworkConfig {
            topology: TopologyKind::Mesh { width: 4, height: 4 },
            flit_width: Bits(128),
            routers: placement
                .mask()
                .iter()
                .map(|&b| if b { RouterCfg::BIG } else { RouterCfg::SMALL })
                .collect(),
            link_widths: LinkWidths::ByBigRouters {
                big: placement.mask().to_vec(),
                narrow: Bits(128),
                wide: Bits(256),
            },
            routing: RoutingKind::DimensionOrder,
            frequency_ghz: 2.07,
            escape_timeout: 16,
        };
        let mut net = Network::new(cfg).expect("placement config must be valid");
        for (i, &(s, d)) in pairs.iter().enumerate() {
            net.enqueue(NodeId(s), NodeId(d), Bits(1024), PacketClass::Data, i as u64);
        }
        drain(&mut net, 100_000);
    }

    /// Any random heterogeneous placement that passes the static verifier
    /// (`heteronoc-verify` CDG + lint analysis) survives 10k cycles of
    /// high uniform-random load with no deadlock and exact flit
    /// conservation: every injected packet retires with all of its flits
    /// and the network drains completely.
    #[test]
    fn verified_random_layouts_conserve_flits_under_load(
        big_indices in prop::collection::btree_set(0usize..64, 0..=8),
        eight in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let w = if eight { 8 } else { 4 };
        let n = w * w;
        let big: Vec<RouterId> = big_indices.iter().filter(|&&i| i < n).map(|&i| RouterId(i)).collect();
        let placement = Placement::from_big_routers(w, w, &big);
        let cfg = NetworkConfig {
            topology: TopologyKind::Mesh { width: w, height: w },
            flit_width: Bits(128),
            routers: placement
                .mask()
                .iter()
                .map(|&b| if b { RouterCfg::BIG } else { RouterCfg::SMALL })
                .collect(),
            link_widths: LinkWidths::ByBigRouters {
                big: placement.mask().to_vec(),
                narrow: Bits(128),
                wide: Bits(256),
            },
            routing: RoutingKind::DimensionOrder,
            frequency_ghz: 2.07,
            escape_timeout: 16,
        };
        // The static proof gates the dynamic run: only verified layouts
        // are exercised (and every X-Y mesh layout must verify).
        heteronoc_verify::verify_config("random placement", &cfg)
            .expect("every X-Y-routed mesh placement is deadlock-free");

        let mut net = Network::new(cfg).expect("verified config must build");
        net.set_measuring(true);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut packets = 0u64;
        let mut expect_flits = 0u64;
        for _ in 0..10_000u32 {
            for src in 0..n {
                if rng.random::<f64>() < 0.1 {
                    let dst = (src + rng.random_range(1..n)) % n;
                    let size = if rng.random::<f64>() < 0.2 { Bits(1024) } else { Bits(128) };
                    expect_flits += u64::from(size.flits(Bits(128)));
                    packets += 1;
                    net.enqueue(NodeId(src), NodeId(dst), size, PacketClass::Data, packets);
                }
            }
            net.step();
        }
        drain(&mut net, 400_000);
        prop_assert_eq!(net.stats().packets_retired, packets);
        prop_assert_eq!(net.stats().flits_retired, expect_flits);
        prop_assert_eq!(net.diagnostics().buffered_flits, 0);
    }

    /// The torus dateline scheme never deadlocks for any batch.
    #[test]
    fn torus_drains_any_batch(
        pairs in prop::collection::vec((0usize..64, 0usize..64), 1..50),
    ) {
        let cfg = NetworkConfig::homogeneous(
            TopologyKind::Torus { width: 8, height: 8 },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        );
        let mut net = Network::new(cfg).expect("valid torus");
        for (i, &(s, d)) in pairs.iter().enumerate() {
            net.enqueue(NodeId(s), NodeId(d), Bits(1024), PacketClass::Data, i as u64);
        }
        drain(&mut net, 200_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The CMP drains and commits exactly the trace contents for arbitrary
    /// tiny workloads (random sharing patterns).
    #[test]
    fn cmp_commits_exactly_the_trace(
        ops in prop::collection::vec((0usize..16, 0u8..2, 0u64..64), 1..80),
    ) {
        use heteronoc::traffic::trace::{MemOp, TraceRecord, VecTrace};
        use heteronoc_cmp::{CmpConfig, CmpSystem, CoreParams};

        let mut per_core: Vec<Vec<TraceRecord>> = vec![Vec::new(); 16];
        for &(core, op, blk) in &ops {
            per_core[core].push(TraceRecord {
                gap: 1,
                op: if op == 0 { MemOp::Load } else { MemOp::Store },
                addr: 0x1_0000 + blk * 128,
            });
        }
        let expected: Vec<u64> = per_core.iter().map(|v| 2 * v.len() as u64).collect();
        let net = NetworkConfig::homogeneous(
            TopologyKind::Mesh { width: 4, height: 4 },
            RouterCfg::BASELINE,
            Bits(192),
            2.2,
        );
        let mut cfg = CmpConfig::paper_defaults(net);
        cfg.mc_nodes = heteronoc_cmp::corners4(4, 4);
        let traces: Vec<Box<dyn heteronoc::traffic::TraceSource + Send>> = per_core
            .into_iter()
            .map(|v| Box::new(VecTrace::new(v)) as _)
            .collect();
        let mut sys = CmpSystem::new(cfg, vec![CoreParams::OUT_OF_ORDER; 16], traces);
        sys.run(2_000_000);
        prop_assert!(sys.finished(), "CMP must drain");
        prop_assert_eq!(sys.committed(), expected);
    }
}
