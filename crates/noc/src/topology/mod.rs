//! Network topologies.
//!
//! A [`TopologyGraph`] is the concrete, fully-elaborated graph of routers,
//! node attachments and unidirectional links that the simulator runs on.
//! Constructors for the topologies evaluated in the paper live in the
//! submodules:
//!
//! * [`mesh`]: 2-D mesh (the paper's primary platform, Figs. 1, 3, 7-14),
//! * [`torus`]: 2-D torus (edge-symmetric comparison, §5.1.1 / Fig. 10),
//! * [`cmesh`]: concentrated mesh (Fig. 2a),
//! * [`flatbfly`]: flattened butterfly (Fig. 2b).
//!
//! Port convention: for every router the first `concentration` ports are
//! local (node) ports, followed by the inter-router ports in a
//! topology-defined order. Each inter-router channel is modelled as a pair of
//! unidirectional links.

pub mod cmesh;
pub mod flatbfly;
pub mod mesh;
pub mod torus;

use serde::{Deserialize, Serialize};

use crate::types::{Coord, LinkId, NodeId, PortId, RouterId};

/// Cardinal directions used by the grid topologies for port naming.
///
/// The numeric values match the port offsets after the local ports:
/// a mesh router's port list is `[local, N, E, S, W]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// Towards smaller `y`.
    North,
    /// Towards larger `x`.
    East,
    /// Towards larger `y`.
    South,
    /// Towards smaller `x`.
    West,
}

impl Direction {
    /// All four directions in port order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The opposite direction.
    ///
    /// # Examples
    /// ```
    /// use heteronoc_noc::topology::Direction;
    /// assert_eq!(Direction::North.opposite(), Direction::South);
    /// ```
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

/// What a router port connects to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PortKind {
    /// An injection/ejection port attached to a node.
    Local {
        /// The attached endpoint.
        node: NodeId,
    },
    /// An inter-router port; `out` is the outgoing link on this port and
    /// `into` the incoming one.
    Link {
        /// Neighbouring router reached through this port.
        to: RouterId,
        /// Outgoing (this router → `to`) link.
        out: LinkId,
        /// Incoming (`to` → this router) link.
        into: LinkId,
    },
}

/// One port of a router.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PortDesc {
    /// Connection of this port.
    pub kind: PortKind,
}

/// A router and its ports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouterDesc {
    /// Grid position (all supported topologies are grid-based).
    pub coord: Coord,
    /// Ports in convention order (locals first).
    pub ports: Vec<PortDesc>,
}

/// A unidirectional router-to-router channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LinkDesc {
    /// Driving router.
    pub src: RouterId,
    /// Output port on the driving router.
    pub src_port: PortId,
    /// Receiving router.
    pub dst: RouterId,
    /// Input port on the receiving router.
    pub dst_port: PortId,
    /// True for torus wrap-around links (used for dateline VC classes).
    pub wrap: bool,
}

/// Where a node attaches to the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NodeAttachment {
    /// Router the node is connected to.
    pub router: RouterId,
    /// Local port index on that router.
    pub port: PortId,
}

/// Which topology family a graph was built from (routing dispatches on this).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TopologyKind {
    /// `width x height` 2-D mesh, one node per router.
    Mesh {
        /// Columns.
        width: usize,
        /// Rows.
        height: usize,
    },
    /// `width x height` 2-D torus, one node per router.
    Torus {
        /// Columns.
        width: usize,
        /// Rows.
        height: usize,
    },
    /// Concentrated mesh: `width x height` routers, `concentration` nodes each.
    CMesh {
        /// Router columns.
        width: usize,
        /// Router rows.
        height: usize,
        /// Nodes per router.
        concentration: usize,
    },
    /// 2-D flattened butterfly: `width x height` routers, fully connected
    /// within each row and each column, `concentration` nodes per router.
    FlattenedButterfly {
        /// Router columns.
        width: usize,
        /// Router rows.
        height: usize,
        /// Nodes per router.
        concentration: usize,
    },
}

impl TopologyKind {
    /// Builds the concrete graph for this topology kind.
    ///
    /// # Examples
    /// ```
    /// use heteronoc_noc::topology::TopologyKind;
    /// let g = TopologyKind::Mesh { width: 8, height: 8 }.build();
    /// assert_eq!(g.num_routers(), 64);
    /// assert_eq!(g.num_nodes(), 64);
    /// ```
    pub fn build(self) -> TopologyGraph {
        match self {
            TopologyKind::Mesh { width, height } => mesh::build(width, height),
            TopologyKind::Torus { width, height } => torus::build(width, height),
            TopologyKind::CMesh {
                width,
                height,
                concentration,
            } => cmesh::build(width, height, concentration),
            TopologyKind::FlattenedButterfly {
                width,
                height,
                concentration,
            } => flatbfly::build(width, height, concentration),
        }
    }
}

/// The fully elaborated topology the simulator runs on.
///
/// Construct one through [`TopologyKind::build`] or the submodule `build`
/// functions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopologyGraph {
    kind: TopologyKind,
    routers: Vec<RouterDesc>,
    nodes: Vec<NodeAttachment>,
    links: Vec<LinkDesc>,
}

impl TopologyGraph {
    pub(crate) fn new(
        kind: TopologyKind,
        routers: Vec<RouterDesc>,
        nodes: Vec<NodeAttachment>,
        links: Vec<LinkDesc>,
    ) -> Self {
        let g = Self {
            kind,
            routers,
            nodes,
            links,
        };
        g.debug_validate();
        g
    }

    fn debug_validate(&self) {
        for (i, l) in self.links.iter().enumerate() {
            debug_assert_eq!(
                match self.routers[l.src.index()].ports[l.src_port.index()].kind {
                    PortKind::Link { out, .. } => out,
                    PortKind::Local { .. } => panic!("link src port is local"),
                },
                LinkId(i)
            );
        }
        for (n, at) in self.nodes.iter().enumerate() {
            match self.routers[at.router.index()].ports[at.port.index()].kind {
                PortKind::Local { node } => debug_assert_eq!(node, NodeId(n)),
                PortKind::Link { .. } => panic!("node attached to a link port"),
            }
        }
    }

    /// The topology family this graph was built from.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of attached nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of unidirectional links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Router descriptors, indexed by [`RouterId`].
    pub fn routers(&self) -> &[RouterDesc] {
        &self.routers
    }

    /// Link descriptors, indexed by [`LinkId`].
    pub fn links(&self) -> &[LinkDesc] {
        &self.links
    }

    /// Node attachments, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[NodeAttachment] {
        &self.nodes
    }

    /// Descriptor of `router`.
    ///
    /// # Panics
    /// Panics if `router` is out of range.
    pub fn router(&self, router: RouterId) -> &RouterDesc {
        &self.routers[router.index()]
    }

    /// Grid coordinate of `router`.
    pub fn coord(&self, router: RouterId) -> Coord {
        self.routers[router.index()].coord
    }

    /// The router at grid coordinate `c`, if the coordinate is in range.
    pub fn router_at(&self, c: Coord) -> Option<RouterId> {
        let (w, h) = self.grid_dims();
        if c.x < w && c.y < h {
            Some(RouterId(c.y * w + c.x))
        } else {
            None
        }
    }

    /// Router grid dimensions `(width, height)`.
    pub fn grid_dims(&self) -> (usize, usize) {
        match self.kind {
            TopologyKind::Mesh { width, height }
            | TopologyKind::Torus { width, height }
            | TopologyKind::CMesh { width, height, .. }
            | TopologyKind::FlattenedButterfly { width, height, .. } => (width, height),
        }
    }

    /// Attachment point of `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn attachment(&self, node: NodeId) -> NodeAttachment {
        self.nodes[node.index()]
    }

    /// The port of `router` whose outgoing link reaches `to`, if adjacent.
    pub fn port_towards(&self, router: RouterId, to: RouterId) -> Option<PortId> {
        self.routers[router.index()]
            .ports
            .iter()
            .enumerate()
            .find_map(|(i, p)| match p.kind {
                PortKind::Link { to: t, .. } if t == to => Some(PortId(i)),
                _ => None,
            })
    }

    /// The outgoing link of `router` on `port`, if `port` is a link port.
    pub fn out_link(&self, router: RouterId, port: PortId) -> Option<LinkId> {
        match self.routers[router.index()].ports.get(port.index())?.kind {
            PortKind::Link { out, .. } => Some(out),
            PortKind::Local { .. } => None,
        }
    }

    /// Iterates over `(PortId, &PortDesc)` of a router.
    pub fn ports(&self, router: RouterId) -> impl Iterator<Item = (PortId, &PortDesc)> {
        self.routers[router.index()]
            .ports
            .iter()
            .enumerate()
            .map(|(i, p)| (PortId(i), p))
    }

    /// Minimal hop count between the routers serving `src` and `dst` under
    /// dimension-order routing (used for ideal-latency accounting).
    pub fn route_hops(&self, src: NodeId, dst: NodeId) -> usize {
        let a = self.coord(self.attachment(src).router);
        let b = self.coord(self.attachment(dst).router);
        match self.kind {
            TopologyKind::Mesh { .. } | TopologyKind::CMesh { .. } => a.manhattan(b),
            TopologyKind::Torus { width, height } => {
                ring_dist(a.x, b.x, width) + ring_dist(a.y, b.y, height)
            }
            TopologyKind::FlattenedButterfly { .. } => {
                usize::from(a.x != b.x) + usize::from(a.y != b.y)
            }
        }
    }
}

/// Shortest distance between positions `a` and `b` on a ring of size `n`.
pub(crate) fn ring_dist(a: usize, b: usize, n: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(n - d)
}

/// Helper used by the grid topology builders: creates the two unidirectional
/// links of a bidirectional channel and patches both routers' port tables.
pub(crate) struct GraphBuilder {
    pub routers: Vec<RouterDesc>,
    pub nodes: Vec<NodeAttachment>,
    pub links: Vec<LinkDesc>,
}

impl GraphBuilder {
    pub fn with_routers(coords: Vec<Coord>) -> Self {
        Self {
            routers: coords
                .into_iter()
                .map(|coord| RouterDesc {
                    coord,
                    ports: Vec::new(),
                })
                .collect(),
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Attaches a fresh node to `router`, returning its id.
    pub fn attach_node(&mut self, router: RouterId) -> NodeId {
        let node = NodeId(self.nodes.len());
        let port = PortId(self.routers[router.index()].ports.len());
        self.routers[router.index()].ports.push(PortDesc {
            kind: PortKind::Local { node },
        });
        self.nodes.push(NodeAttachment { router, port });
        node
    }

    /// Adds a bidirectional channel `a <-> b` (two unidirectional links).
    pub fn connect(&mut self, a: RouterId, b: RouterId, wrap: bool) {
        let a_port = PortId(self.routers[a.index()].ports.len());
        let b_port = PortId(self.routers[b.index()].ports.len());
        let ab = LinkId(self.links.len());
        let ba = LinkId(self.links.len() + 1);
        self.routers[a.index()].ports.push(PortDesc {
            kind: PortKind::Link {
                to: b,
                out: ab,
                into: ba,
            },
        });
        self.routers[b.index()].ports.push(PortDesc {
            kind: PortKind::Link {
                to: a,
                out: ba,
                into: ab,
            },
        });
        self.links.push(LinkDesc {
            src: a,
            src_port: a_port,
            dst: b,
            dst_port: b_port,
            wrap,
        });
        self.links.push(LinkDesc {
            src: b,
            src_port: b_port,
            dst: a,
            dst_port: a_port,
            wrap,
        });
    }

    pub fn finish(self, kind: TopologyKind) -> TopologyGraph {
        TopologyGraph::new(kind, self.routers, self.nodes, self.links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn ring_dist_wraps() {
        assert_eq!(ring_dist(0, 7, 8), 1);
        assert_eq!(ring_dist(0, 4, 8), 4);
        assert_eq!(ring_dist(3, 3, 8), 0);
        assert_eq!(ring_dist(1, 6, 8), 3);
    }

    #[test]
    fn builder_links_are_paired() {
        let mut b = GraphBuilder::with_routers(vec![Coord::new(0, 0), Coord::new(1, 0)]);
        let r0 = RouterId(0);
        let r1 = RouterId(1);
        b.attach_node(r0);
        b.attach_node(r1);
        b.connect(r0, r1, false);
        let g = b.finish(TopologyKind::Mesh {
            width: 2,
            height: 1,
        });
        assert_eq!(g.num_links(), 2);
        assert_eq!(g.port_towards(r0, r1), Some(PortId(1)));
        assert_eq!(g.port_towards(r1, r0), Some(PortId(1)));
        let l = g.out_link(r0, PortId(1)).unwrap();
        assert_eq!(g.links()[l.index()].dst, r1);
    }
}
