//! Property-based tests of the power/area/frequency models.

use proptest::prelude::*;

use heteronoc_power::breakdown::router_shares;
use heteronoc_power::model::AnalyticModel;
use heteronoc_power::netpower::{Activity, NetworkPower};

proptest! {
    /// Power is positive and monotone in VCs, width and frequency over the
    /// realistic design range.
    #[test]
    fn power_monotone(vcs in 1usize..12, width in 32u32..512, df in 0.1f64..1.0) {
        let m = AnalyticModel::paper_calibrated();
        let p = m.power_at_50(vcs, width, 2.0);
        prop_assert!(p > 0.0);
        prop_assert!(m.power_at_50(vcs + 1, width, 2.0) > p);
        prop_assert!(m.power_at_50(vcs, width + 32, 2.0) > p);
        prop_assert!(m.power_at_50(vcs, width, 2.0 + df) > p);
    }

    /// Area is positive and monotone in VCs and width.
    #[test]
    fn area_monotone(vcs in 1usize..12, width in 32u32..512) {
        let m = AnalyticModel::paper_calibrated();
        let a = m.area_mm2(vcs, width);
        prop_assert!(a > 0.0);
        prop_assert!(m.area_mm2(vcs + 1, width) > a);
        prop_assert!(m.area_mm2(vcs, width + 32) > a);
    }

    /// Frequency decreases with VCs but stays positive in range.
    #[test]
    fn frequency_decreasing(vcs in 1usize..16) {
        let m = AnalyticModel::paper_calibrated();
        let f = m.freq_ghz(vcs);
        prop_assert!(f > 0.5, "freq {f} at {vcs} VCs");
        prop_assert!(m.freq_ghz(vcs + 1) < f);
    }

    /// Component shares always sum to 1 and stay positive.
    #[test]
    fn shares_partition(vcs in 1usize..12, width in 32u32..512, depth in 1usize..16) {
        let s = router_shares(vcs, width, depth);
        prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for x in s {
            prop_assert!(x > 0.0 && x < 1.0);
        }
    }

    /// Router power interpolates linearly between the leakage floor and the
    /// full-activity ceiling.
    #[test]
    fn activity_scaling_is_linear_and_bounded(a in 0.0f64..1.0) {
        let np = NetworkPower::paper_calibrated();
        let at = |x: f64| np
            .router_power(3, 192, 5, 5, 2.2, Activity::uniform(x))
            .total();
        let floor = at(0.0);
        let ceil = at(1.0);
        let p = at(a);
        prop_assert!(p >= floor - 1e-12 && p <= ceil + 1e-12);
        // Linearity: P(a) = floor + (ceil - floor) * a.
        let expect = floor + (ceil - floor) * a;
        prop_assert!((p - expect).abs() < 1e-9);
    }
}
