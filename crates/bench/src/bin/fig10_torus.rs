//! Figure 10: heterogeneity in a mesh vs an edge-symmetric torus. For each
//! application workload we measure the network-latency reduction of the
//! Diagonal+BL heterogeneous layout over the homogeneous baseline, on both
//! topologies. The paper finds the torus benefit ~44% smaller on average:
//! torus wrap-around paths bypass the centrally-provisioned big routers.

use heteronoc::noc::topology::TopologyKind;
use heteronoc::traffic::workloads::{Benchmark, SyntheticWorkload};
use heteronoc::traffic::TraceSource;
use heteronoc::{network_config, Layout};
use heteronoc_bench::{full_scale, pct_reduction, Report};
use heteronoc_cmp::{CmpConfig, CmpSystem, CoreParams};

fn trace_len() -> u64 {
    if full_scale() {
        15_000
    } else {
        1_000
    }
}

/// Full scale covers all ten benchmarks; quick mode a representative five
/// (two commercial, three PARSEC spanning the sharing/locality range).
fn benchmarks() -> Vec<Benchmark> {
    if full_scale() {
        Benchmark::ALL.to_vec()
    } else {
        vec![
            Benchmark::Sap,
            Benchmark::SpecJbb,
            Benchmark::Vips,
            Benchmark::Canneal,
            Benchmark::StreamCluster,
        ]
    }
}

fn run(layout: &Layout, topo: TopologyKind, bench: Benchmark) -> f64 {
    let net_cfg = network_config(layout, topo);
    let freq = net_cfg.frequency_ghz;
    let cfg = CmpConfig::paper_defaults(net_cfg);
    let mk = || -> Vec<Box<dyn TraceSource + Send>> {
        (0..64)
            .map(|t| {
                Box::new(SyntheticWorkload::new(bench, t, 0xF1610, trace_len()))
                    as Box<dyn TraceSource + Send>
            })
            .collect()
    };
    let mut sys = CmpSystem::new(cfg, vec![CoreParams::OUT_OF_ORDER; 64], mk());
    sys.prewarm(mk());
    sys.run(20_000_000);
    assert!(sys.finished(), "{layout} {topo:?} {bench} did not drain");
    sys.network().stats().mean_latency_ns(freq)
}

fn main() {
    let mut rep = Report::new("fig10_torus");
    rep.line("# Figure 10 — heterogeneity benefit: 8x8 mesh vs 8x8 torus");
    rep.line(format!(
        "# Diagonal+BL latency reduction over baseline per workload; {} refs/core",
        trace_len()
    ));
    rep.line("");
    rep.line(format!("{:<12}{:>14}{:>14}", "workload", "mesh", "torus"));

    let mesh = TopologyKind::Mesh {
        width: 8,
        height: 8,
    };
    let torus = TopologyKind::Torus {
        width: 8,
        height: 8,
    };
    let mut mesh_sum = 0.0;
    let mut torus_sum = 0.0;
    let benches = benchmarks();
    for &bench in &benches {
        let mesh_base = run(&Layout::Baseline, mesh, bench);
        let mesh_het = run(&Layout::DiagonalBL, mesh, bench);
        let torus_base = run(&Layout::Baseline, torus, bench);
        let torus_het = run(&Layout::DiagonalBL, torus, bench);
        let m = pct_reduction(mesh_base, mesh_het);
        let t = pct_reduction(torus_base, torus_het);
        mesh_sum += m;
        torus_sum += t;
        rep.line(format!(
            "{:<12}{:>+13.1}%{:>+13.1}%",
            bench.to_string(),
            m,
            t
        ));
        eprintln!("done: {bench}");
    }
    let n = benches.len() as f64;
    rep.line(format!(
        "{:<12}{:>+13.1}%{:>+13.1}%",
        "mean",
        mesh_sum / n,
        torus_sum / n
    ));
    rep.line("");
    rep.line(format!(
        "relative: torus benefit is {:.0}% of the mesh benefit (paper: ~56%, i.e. 44% smaller)",
        100.0 * (torus_sum / mesh_sum)
    ));
}
