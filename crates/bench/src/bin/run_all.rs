//! Runs every experiment in-process, sharded across the sweep executor's
//! worker pool (set `HETERONOC_JOBS=1` for the old serial behavior and
//! `HETERONOC_FULL=1` for paper-scale runs). Each experiment's stdout is
//! captured and printed as one contiguous block when it finishes; a panic
//! anywhere makes the whole run exit non-zero.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use heteronoc_bench::sweep::{default_jobs, parallel_map};
use heteronoc_bench::{capture_output, experiments};

fn main() -> ExitCode {
    let jobs = default_jobs();
    println!(
        "running {} experiments on {jobs} worker thread(s)",
        experiments::ALL.len()
    );

    let results = parallel_map(jobs, experiments::ALL.to_vec(), |(name, entry)| {
        let (outcome, output) = capture_output(|| catch_unwind(AssertUnwindSafe(entry)));
        // One locked write per experiment keeps blocks contiguous even
        // when several finish close together.
        let mut block = format!("=== {name} ===\n{output}");
        if outcome.is_err() {
            block.push_str(&format!("!!! {name} panicked\n"));
        }
        block.push('\n');
        let mut so = std::io::stdout().lock();
        let _ = so.write_all(block.as_bytes());
        let _ = so.flush();
        (name, outcome.is_ok())
    });

    let failed: Vec<&str> = results
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(name, _)| *name)
        .collect();
    if failed.is_empty() {
        println!("all {} experiments completed; see results/", results.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("failed experiments: {failed:?}");
        ExitCode::FAILURE
    }
}
