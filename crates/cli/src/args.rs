//! Tiny dependency-free flag parser for the CLI: `--key value` and
//! `--flag` pairs after a subcommand.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// Positional arguments after the subcommand (e.g. the two files of
    /// `report --compare a.json b.json`). Commands that take none reject
    /// leftovers themselves via [`Args::no_rest`].
    pub rest: Vec<String>,
    opts: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// # Errors
    /// Returns a message for a dangling `--key` without a value when the
    /// key is not a known boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = items.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.opts.insert(key.to_owned(), v);
                    }
                    _ => out.flags.push(key.to_owned()),
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                out.rest.push(a);
            }
        }
        Ok(out)
    }

    /// Rejects leftover positionals — for commands that take none.
    ///
    /// # Errors
    /// Returns a message naming the first unexpected positional.
    pub fn no_rest(&self) -> Result<(), String> {
        match self.rest.first() {
            None => Ok(()),
            Some(a) => Err(format!("unexpected positional argument '{a}'")),
        }
    }

    /// String option by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Parsed option with a default.
    ///
    /// # Errors
    /// Returns a message when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// Comma-separated list option.
    ///
    /// # Errors
    /// Returns a message when any element fails to parse.
    pub fn get_list<T: std::str::FromStr>(&self, key: &str) -> Result<Option<Vec<T>>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .map_err(|_| format!("invalid element '{x}' in --{key}"))
                })
                .collect::<Result<Vec<T>, String>>()
                .map(Some),
        }
    }

    /// Whether a boolean `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).expect("parses")
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("sweep --layout diagonal-bl --rates 0.01,0.02 --full");
        assert_eq!(a.command.as_deref(), Some("sweep"));
        assert_eq!(a.get("layout"), Some("diagonal-bl"));
        assert_eq!(a.get_list::<f64>("rates").unwrap(), Some(vec![0.01, 0.02]));
        assert!(a.flag("full"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse("audit");
        assert_eq!(a.get_or("packets", 500u64).unwrap(), 500);
        let a = parse("x --packets nope");
        assert!(a.get_or("packets", 1u64).is_err());
    }

    #[test]
    fn positionals_collect_into_rest() {
        let a = parse("report --compare a.json b.json");
        assert_eq!(a.command.as_deref(), Some("report"));
        // `--compare a.json` pairs as key/value; the tail is positional.
        assert_eq!(a.get("compare"), Some("a.json"));
        assert_eq!(a.rest, vec!["b.json".to_owned()]);
        assert!(a.no_rest().is_err());
        assert!(parse("audit").no_rest().is_ok());
    }
}
