//! Configuration lint: the paper's iso-resource invariants.
//!
//! HeteroNoC's argument is *redistribution, not addition* (§2-§3): a
//! heterogeneous layout must hold the total VC budget and the bisection
//! bandwidth of the homogeneous baseline while moving buffers and link
//! width toward the big routers. These checks make that claim machine-
//! verified instead of implicit:
//!
//! * **VC budget** — `Σ vcs_per_port` must equal the baseline's (hard
//!   error; a violating layout breaks the iso-resource comparison).
//! * **Bisection bandwidth** — the horizontal-cut width must not exceed
//!   the baseline's. Exceeding it is reported as a [`LintWarning`] rather
//!   than an error because the paper's own Row2_5+BL layout trades
//!   bisection for hop distance (all eight cut channels touch row 4's big
//!   routers); see `heteronoc::resources` and DESIGN.md.
//! * **Flit combining** — at a big-to-small boundary the wide link must
//!   carry a whole number of narrow-link flits (§3.2), and lane counts the
//!   switch allocator cannot drive are flagged.
//! * **Table coverage** — every table path must follow topology links and
//!   have a reverse-direction entry (§7 hub routing is bidirectional).

use heteronoc_noc::config::{lanes, LinkWidths, NetworkConfig};
use heteronoc_noc::routing::RoutingKind;
use heteronoc_noc::topology::TopologyGraph;
use heteronoc_noc::types::LinkId;

use crate::error::{LintWarning, VerifyError};

/// Structural lint of a single configuration (no baseline needed): link
/// width compatibility and route-table coverage.
///
/// # Errors
/// [`VerifyError::LinkWidthInversion`] / [`VerifyError::CombiningIncompatible`]
/// for width assignments flit combining cannot serve,
/// [`VerifyError::TablePathBrokenLink`] / [`VerifyError::TableCoverageGap`]
/// for malformed route tables.
pub fn lint_structure(
    cfg: &NetworkConfig,
    graph: &TopologyGraph,
) -> Result<Vec<LintWarning>, VerifyError> {
    let mut warnings = Vec::new();

    if let LinkWidths::ByBigRouters { narrow, wide, .. } = &cfg.link_widths {
        if wide.get() < narrow.get() {
            return Err(VerifyError::LinkWidthInversion {
                narrow: narrow.get(),
                wide: wide.get(),
            });
        }
        if narrow.get() > 0 && wide.get() % narrow.get() != 0 {
            return Err(VerifyError::CombiningIncompatible {
                narrow: narrow.get(),
                wide: wide.get(),
            });
        }
    }
    for (i, w) in cfg.link_widths.resolve(graph).iter().enumerate() {
        let l = lanes(*w, cfg.flit_width);
        if l > 2 {
            warnings.push(LintWarning::UnderusedLanes {
                link: LinkId(i),
                lanes: l,
            });
        }
    }

    if let RoutingKind::TableXy(tbl) = &cfg.routing {
        for ((src, dst), path) in tbl.pairs() {
            for hop in path.windows(2) {
                if graph.port_towards(hop[0], hop[1]).is_none() {
                    return Err(VerifyError::TablePathBrokenLink {
                        src,
                        dst,
                        at: hop[0],
                    });
                }
            }
            if tbl.path(dst, src).is_none() {
                return Err(VerifyError::TableCoverageGap { src, dst });
            }
        }
    }
    Ok(warnings)
}

/// Iso-resource lint of `cfg` against `baseline` (both on `graph`):
/// VC-budget conservation plus bisection and buffer-bit budgets.
///
/// # Errors
/// [`VerifyError::VcBudgetMismatch`] when `Σ vcs_per_port` differs from
/// the baseline's.
pub fn lint_budget(
    cfg: &NetworkConfig,
    graph: &TopologyGraph,
    baseline: &NetworkConfig,
) -> Result<Vec<LintWarning>, VerifyError> {
    let mut warnings = Vec::new();

    let total: usize = cfg.routers.iter().map(|r| r.vcs_per_port).sum();
    let budget: usize = baseline.routers.iter().map(|r| r.vcs_per_port).sum();
    if total != budget {
        return Err(VerifyError::VcBudgetMismatch { total, budget });
    }

    let bisection = cfg.bisection_bits(graph);
    let bisection_budget = baseline.bisection_bits(graph);
    if bisection > bisection_budget {
        warnings.push(LintWarning::BisectionExceedsBudget {
            bits: bisection,
            budget: bisection_budget,
        });
    }

    // Table 1 counts buffer storage per *port*, independent of the port
    // count (our meshes depopulate edge ports, so graph-level totals shift
    // with where the big routers land). The conserved quantity is
    // Σ vcs · depth · flit_width.
    let buffers = per_port_buffer_bits(cfg);
    let buffer_budget = per_port_buffer_bits(baseline);
    if buffers > buffer_budget {
        warnings.push(LintWarning::BufferBitsExceedBudget {
            bits: buffers,
            budget: buffer_budget,
        });
    }
    Ok(warnings)
}

/// Per-port buffer storage `Σ vcs · depth · flit_width` over all routers —
/// the quantity Table 1 conserves across layouts.
fn per_port_buffer_bits(cfg: &NetworkConfig) -> u64 {
    cfg.routers
        .iter()
        .map(|r| (r.vcs_per_port * r.buffer_depth) as u64 * u64::from(cfg.flit_width.get()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteronoc_noc::config::{NetworkConfigBuilder, RouterCfg};
    use heteronoc_noc::routing::RouteTable;
    use heteronoc_noc::types::{Bits, RouterId};

    #[test]
    fn homogeneous_mesh_lints_clean() {
        let cfg = NetworkConfig::paper_baseline();
        let g = cfg.build_graph();
        assert!(lint_structure(&cfg, &g).unwrap().is_empty());
        assert!(lint_budget(&cfg, &g, &cfg).unwrap().is_empty());
    }

    #[test]
    fn vc_budget_violation_is_rejected() {
        let baseline = NetworkConfig::paper_baseline();
        // One extra VC on one router: 193 != 192.
        let cfg = NetworkConfigBuilder::mesh(8, 8)
            .router(
                0,
                RouterCfg {
                    vcs_per_port: 4,
                    buffer_depth: 5,
                },
            )
            .build()
            .expect("valid config");
        let g = cfg.build_graph();
        let err = lint_budget(&cfg, &g, &baseline).unwrap_err();
        assert_eq!(
            err,
            VerifyError::VcBudgetMismatch {
                total: 193,
                budget: 192
            }
        );
    }

    #[test]
    fn width_inversion_and_bad_combining_are_rejected() {
        use heteronoc_noc::config::LinkWidths;
        let mut cfg = NetworkConfig::paper_baseline();
        cfg.flit_width = Bits(64);
        cfg.link_widths = LinkWidths::ByBigRouters {
            big: vec![false; 64],
            narrow: Bits(256),
            wide: Bits(128),
        };
        let g = cfg.build_graph();
        assert!(matches!(
            lint_structure(&cfg, &g).unwrap_err(),
            VerifyError::LinkWidthInversion { .. }
        ));
        cfg.link_widths = LinkWidths::ByBigRouters {
            big: vec![false; 64],
            narrow: Bits(128),
            wide: Bits(192),
        };
        assert!(matches!(
            lint_structure(&cfg, &g).unwrap_err(),
            VerifyError::CombiningIncompatible { .. }
        ));
    }

    #[test]
    fn one_way_table_is_a_coverage_gap() {
        let mut tbl = RouteTable::new();
        tbl.insert(
            RouterId(0),
            RouterId(2),
            vec![RouterId(0), RouterId(1), RouterId(2)],
        );
        let cfg = NetworkConfigBuilder::mesh(8, 8)
            .routing(RoutingKind::TableXy(tbl))
            .build()
            .expect("valid config");
        let g = cfg.build_graph();
        assert_eq!(
            lint_structure(&cfg, &g).unwrap_err(),
            VerifyError::TableCoverageGap {
                src: RouterId(0),
                dst: RouterId(2)
            }
        );
    }

    #[test]
    fn off_topology_table_path_is_rejected() {
        let mut tbl = RouteTable::new();
        // 0 -> 9 is a diagonal step on the 8x8 mesh: not a link.
        tbl.insert(RouterId(0), RouterId(9), vec![RouterId(0), RouterId(9)]);
        tbl.insert(RouterId(9), RouterId(0), vec![RouterId(9), RouterId(0)]);
        let cfg = NetworkConfigBuilder::mesh(8, 8)
            .routing(RoutingKind::TableXy(tbl))
            .build()
            .expect("valid config");
        let g = cfg.build_graph();
        // `pairs()` iteration order is unspecified, so either direction of
        // the broken pair may be reported first.
        match lint_structure(&cfg, &g).unwrap_err() {
            VerifyError::TablePathBrokenLink { src, dst, at } => {
                assert_eq!(at, src);
                assert!(
                    (src, dst) == (RouterId(0), RouterId(9))
                        || (src, dst) == (RouterId(9), RouterId(0)),
                    "unexpected pair {src} -> {dst}"
                );
            }
            other => panic!("expected TablePathBrokenLink, got {other:?}"),
        }
    }
}
