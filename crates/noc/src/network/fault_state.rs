//! Engine-side fault state: link retransmission, hard-fault bookkeeping and
//! packet absorption.
//!
//! This module holds the *data* the fault layer needs; the state machine
//! itself lives in `network.rs` (it is entangled with the event wheel and
//! router state). Everything here exists only when a [`FaultPlan`] was
//! attached via [`super::Network::with_faults`] — fault-free networks carry
//! a `None` and the engine's fast path is untouched.
//!
//! # Link-level retransmission (go-back-N)
//!
//! Every unidirectional link gets a [`LinkTx`]: the sender assigns each flit
//! transmission a sequence number and keeps the flit in a replay buffer
//! until acknowledged. The receiver accepts exactly the next expected
//! sequence number; a corrupted in-order flit is nack'd, out-of-order
//! arrivals (the go-back-N tail behind a corrupted flit) are discarded
//! silently. A nack — or a timeout when both ack and nack are lost (dead
//! receiver) — triggers a bounded retry with exponential backoff that
//! re-sends the whole replay buffer with the original sequence numbers.
//! `epoch` stamps retries so that stale timeouts and resends become no-ops.
//!
//! Credits are consumed at the *first* transmission only; a retransmission
//! never touches flow control, because the downstream buffer slot was
//! reserved when the flit first left. That keeps the credit-conservation
//! invariant exact: `in_transit` counts flits that hold a downstream slot
//! but are not yet buffered there (in the wheel, or parked in a replay
//! buffer awaiting retry), and the `verify`-feature checker adds it to the
//! usual credits + wheel + FIFO sum.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::{
    DropReason, DroppedPacket, FaultCounters, FaultPlan, HardFault, RecoveryCounters,
    RecoveryPolicy, UnrecoverableFault,
};
use crate::packet::{Flit, PacketClass};
use crate::topology::TopologyGraph;
use crate::types::{Bits, Cycle, LinkId, NodeId, PacketId, PortId, RouterId, VcId};

/// A transmitted-but-unacknowledged flit held for possible retransmission.
#[derive(Clone, Debug)]
pub(super) struct ReplayEntry {
    /// Link-local sequence number (assigned at first transmission).
    pub seq: u64,
    /// Downstream input VC the flit travels on.
    pub vc: VcId,
    /// The flit itself.
    pub flit: Flit,
}

/// Per-link retransmission state (sender and receiver side of one
/// unidirectional channel).
#[derive(Clone, Debug)]
pub(super) struct LinkTx {
    /// Unacknowledged flits, oldest first.
    pub replay: VecDeque<ReplayEntry>,
    /// Next sequence number to assign.
    pub tx_seq: u64,
    /// Receiver side: next sequence number it will accept.
    pub rx_expected: u64,
    /// Transmission attempts of the current replay window (1 = first send).
    pub attempts: u32,
    /// Bumped on every ack progress and every retry; stamps timeouts and
    /// resends so stale ones are ignored.
    pub epoch: u64,
    /// Nacks arriving before this cycle are duplicates of the failure that
    /// already triggered the pending retry.
    pub backoff_until: Cycle,
    /// Hard-faulted: refuses new VC-allocation grants (in-flight wormholes
    /// drain).
    pub dead: bool,
    /// Per-downstream-VC count of flits that consumed a credit but are not
    /// yet in the downstream FIFO (on the wire or parked in `replay`).
    pub in_transit: Vec<u32>,
}

impl LinkTx {
    fn new(vcs: usize) -> Self {
        Self {
            replay: VecDeque::new(),
            tx_seq: 0,
            rx_expected: 0,
            attempts: 1,
            epoch: 0,
            backoff_until: 0,
            dead: false,
            in_transit: vec![0; vcs],
        }
    }
}

/// Deferred events beyond the 3-cycle wheel horizon (retry timeouts and
/// backoff-delayed resends).
#[derive(Clone, Copy, Debug)]
pub(super) enum FarEvent {
    /// Retransmit `link`'s replay buffer, unless `epoch` is stale.
    Resend {
        /// The retrying link.
        link: LinkId,
        /// Epoch at scheduling time.
        epoch: u64,
    },
    /// The current window of `link` made no ack/nack progress in time.
    Timeout {
        /// The watched link.
        link: LinkId,
        /// Epoch at scheduling time.
        epoch: u64,
    },
    /// End-to-end ack travelling back to the source: retention slot `seq`
    /// of `node` was delivered and may be freed.
    E2eAck {
        /// Source node whose retention buffer holds the slot.
        node: NodeId,
        /// Per-source sequence number.
        seq: u64,
    },
    /// End-to-end ack timeout: retention slot `seq` of `node` saw no ack.
    /// `attempt` stamps the copy being watched so a timeout armed for an
    /// earlier copy is ignored after a reinjection.
    E2eTimeout {
        /// Source node whose retention buffer holds the slot.
        node: NodeId,
        /// Per-source sequence number.
        seq: u64,
        /// Copy count at scheduling time (1 = first injection).
        attempt: u32,
    },
}

/// One packet retained at its source network interface awaiting an
/// end-to-end ack: everything needed to rebuild and reinject a copy.
#[derive(Clone, Copy, Debug)]
pub(super) struct Retained {
    /// Destination endpoint.
    pub dst: NodeId,
    /// Payload size.
    pub size: Bits,
    /// Message class.
    pub class: PacketClass,
    /// Client correlation tag.
    pub tag: u64,
    /// Whether the original injection fell inside the measurement window.
    pub measured: bool,
    /// Birth cycle of the *first* copy (reinjected copies keep it, so
    /// end-to-end latency spans the whole recovery).
    pub first_birth: Cycle,
    /// Copies injected so far (1 = original only).
    pub attempts: u32,
    /// Packet id of the newest copy.
    pub current: PacketId,
    /// False once the newest copy was delivered or dropped; a timeout then
    /// reinjects (or gives up) instead of re-arming.
    pub current_alive: bool,
}

/// Per-source end-to-end sequencing state.
#[derive(Clone, Debug, Default)]
pub(super) struct SourceE2e {
    /// Next sequence number this source will assign.
    pub next_seq: u64,
    /// Unacknowledged packets by sequence number.
    pub retained: BTreeMap<u64, Retained>,
    /// All sequence numbers below this are resolved (delivered or
    /// permanently lost).
    pub contig: u64,
    /// Resolved sequence numbers at or above `contig` (kept sparse; merged
    /// into `contig` as the watermark advances).
    pub sparse: BTreeSet<u64>,
}

impl SourceE2e {
    /// Marks `seq` resolved (delivered once, or permanently lost).
    pub fn resolve(&mut self, seq: u64) {
        if seq < self.contig {
            return;
        }
        self.sparse.insert(seq);
        while self.sparse.remove(&self.contig) {
            self.contig += 1;
        }
    }

    /// True when `seq` has been resolved; a further ejection of the same
    /// sequence number is a duplicate.
    pub fn is_resolved(&self, seq: u64) -> bool {
        seq < self.contig || self.sparse.contains(&seq)
    }
}

/// End-to-end delivery-guarantee state (present only when the plan enables
/// [`RecoveryPolicy`]).
#[derive(Clone, Debug)]
pub(super) struct E2eState {
    /// The enabled policy.
    pub policy: RecoveryPolicy,
    /// Per-source sequencing and retention.
    pub sources: Vec<SourceE2e>,
    /// Maps every live copy's packet id to its retention slot.
    pub by_packet: HashMap<PacketId, (NodeId, u64)>,
    /// Abandoned packets whose flits are frozen in dead equipment. They
    /// stay in the engine's `in_flight` map forever so flit-conservation
    /// invariants keep holding; [`super::Network::in_flight`] subtracts
    /// them.
    pub zombies: HashSet<PacketId>,
    /// Recovery event counters.
    pub counters: RecoveryCounters,
}

impl E2eState {
    fn new(policy: RecoveryPolicy, nodes: usize) -> Self {
        Self {
            policy,
            sources: vec![SourceE2e::default(); nodes],
            by_packet: HashMap::new(),
            zombies: HashSet::new(),
            counters: RecoveryCounters::default(),
        }
    }

    /// Total packets currently retained across all sources.
    pub fn pending(&self) -> usize {
        self.sources.iter().map(|s| s.retained.len()).sum()
    }

    /// Updates retention state for a dropped copy of `packet` and returns
    /// whether the loss is recoverable (a retained copy can be reinjected).
    /// Dead-endpoint drops resolve the slot as a permanent loss.
    pub fn note_drop(&mut self, packet: PacketId, reason: DropReason) -> bool {
        let Some((node, seq)) = self.by_packet.remove(&packet) else {
            return false; // untracked (never injected) — permanent
        };
        let src = &mut self.sources[node.index()];
        if let Some(r) = src.retained.get_mut(&seq) {
            if r.current == packet {
                r.current_alive = false;
            }
        }
        let permanent = matches!(reason, DropReason::SourceDead | DropReason::DestinationDead);
        if permanent {
            let had = src.retained.remove(&seq).is_some();
            if had && !src.is_resolved(seq) {
                src.resolve(seq);
                self.counters.lost += 1;
                return false;
            }
            // The slot was already resolved (a copy delivered, or the loss
            // was already accounted): this copy was redundant.
            return true;
        }
        src.retained.contains_key(&seq) || src.is_resolved(seq)
    }
}

/// All fault-mode engine state (boxed inside [`super::Network`]).
#[derive(Clone, Debug)]
pub(super) struct FaultState {
    /// The plan driving this run.
    pub plan: FaultPlan,
    /// Dedicated fault RNG — independent of the traffic RNG, so a benign
    /// plan leaves the simulated traffic bit-for-bit unchanged.
    pub rng: StdRng,
    /// Per-link probability that one flit transmission is corrupted:
    /// `1 - (1 - ber)^flit_bits`.
    pub p_flit: Vec<f64>,
    /// Per-link retransmission state.
    pub links: Vec<LinkTx>,
    /// Hard faults sorted by cycle; `next_hard` indexes the first unapplied.
    pub hard: Vec<HardFault>,
    /// First entry of `hard` not applied yet.
    pub next_hard: usize,
    /// Far-horizon event queue (the wheel only reaches 3 cycles out).
    pub far: BTreeMap<Cycle, Vec<FarEvent>>,
    /// Fail-stop routers.
    pub router_dead: Vec<bool>,
    /// Every unidirectional link killed so far (both directions of each
    /// physical fault).
    pub dead_links: Vec<LinkId>,
    /// Every router killed so far.
    pub dead_routers: Vec<RouterId>,
    /// Input VCs currently absorbing an unroutable packet (ordered, so the
    /// drain order — and with it the credit schedule — is deterministic).
    pub absorbing: BTreeSet<(RouterId, PortId, VcId)>,
    /// Flits already absorbed per still-in-flight packet (the invariant
    /// checker adds these to its conservation sum).
    pub absorbed: HashMap<PacketId, u32>,
    /// Packets dropped since the last [`super::Network::drain_dropped`].
    pub dropped: Vec<DroppedPacket>,
    /// Campaign counters.
    pub counters: FaultCounters,
    /// Set when link retries exhaust; the run cannot continue.
    pub error: Option<UnrecoverableFault>,
    /// Set by hard faults: the installed routing no longer matches the
    /// surviving topology and should be regenerated.
    pub routing_stale: bool,
    /// End-to-end delivery-guarantee state (`None` unless the plan enables
    /// it; the engine's schedules are then bit-for-bit unchanged).
    pub e2e: Option<Box<E2eState>>,
}

impl FaultState {
    /// Builds the fault state for `plan` over `graph`. The plan must have
    /// been validated against the graph already.
    pub fn new(plan: FaultPlan, graph: &TopologyGraph, flit_width: Bits, vcs: &[usize]) -> Self {
        let bits = f64::from(flit_width.get());
        let p_flit: Vec<f64> = (0..graph.num_links())
            .map(|l| {
                let ber = plan.ber_of(LinkId(l)).clamp(0.0, 1.0);
                1.0 - (1.0 - ber).powf(bits)
            })
            .collect();
        let links = graph
            .links()
            .iter()
            .map(|l| LinkTx::new(vcs[l.dst.index()]))
            .collect();
        let hard = plan.sorted_hard();
        let rng = StdRng::seed_from_u64(plan.seed);
        let e2e = plan
            .recovery
            .map(|policy| Box::new(E2eState::new(policy, graph.nodes().len())));
        Self {
            rng,
            p_flit,
            links,
            hard,
            next_hard: 0,
            far: BTreeMap::new(),
            router_dead: vec![false; graph.num_routers()],
            dead_links: Vec::new(),
            dead_routers: Vec::new(),
            absorbing: BTreeSet::new(),
            absorbed: HashMap::new(),
            dropped: Vec::new(),
            counters: FaultCounters::default(),
            error: None,
            routing_stale: false,
            e2e,
            plan,
        }
    }

    /// Queues `ev` for cycle `at` (which may be far beyond the wheel).
    pub fn schedule_far(&mut self, at: Cycle, ev: FarEvent) {
        self.far.entry(at).or_default().push(ev);
    }

    /// Pops every far event due at or before `now`.
    pub fn due_far(&mut self, now: Cycle) -> Vec<FarEvent> {
        let mut due = Vec::new();
        while let Some((&c, _)) = self.far.first_key_value() {
            if c > now {
                break;
            }
            let (_, mut evs) = self.far.pop_first().expect("peeked");
            due.append(&mut evs);
        }
        due
    }

    /// Records a dropped packet.
    pub fn record_drop(&mut self, drop: DroppedPacket) {
        self.counters.packets_dropped += 1;
        self.dropped.push(drop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::mesh;

    #[test]
    fn p_flit_respects_overrides() {
        let g = mesh::build(2, 2);
        let mut plan = FaultPlan::transient(0.0, 1);
        plan.link_ber.push((LinkId(0), 1.0));
        let fs = FaultState::new(plan, &g, Bits(192), &[2; 4]);
        assert_eq!(fs.p_flit[0], 1.0);
        assert_eq!(fs.p_flit[1], 0.0);
    }

    #[test]
    fn far_queue_orders_and_drains() {
        let g = mesh::build(2, 2);
        let mut fs = FaultState::new(FaultPlan::default(), &g, Bits(192), &[2; 4]);
        fs.schedule_far(
            10,
            FarEvent::Timeout {
                link: LinkId(0),
                epoch: 0,
            },
        );
        fs.schedule_far(
            5,
            FarEvent::Resend {
                link: LinkId(1),
                epoch: 0,
            },
        );
        assert!(fs.due_far(4).is_empty());
        let due = fs.due_far(10);
        assert_eq!(due.len(), 2);
        assert!(matches!(due[0], FarEvent::Resend { .. }), "cycle order");
        assert!(fs.due_far(100).is_empty());
    }

    #[test]
    fn resolved_watermark_advances_and_stays_sparse() {
        let mut s = SourceE2e::default();
        assert!(!s.is_resolved(0));
        s.resolve(2);
        assert!(s.is_resolved(2) && !s.is_resolved(0) && !s.is_resolved(1));
        assert_eq!(s.contig, 0);
        s.resolve(0);
        assert_eq!(s.contig, 1, "0 merges, 2 stays sparse");
        s.resolve(1);
        assert_eq!(s.contig, 3, "1 then sparse 2 merge into the watermark");
        assert!(s.sparse.is_empty());
        s.resolve(1); // duplicate resolution below the watermark is a no-op
        assert_eq!(s.contig, 3);
    }

    #[test]
    fn e2e_state_built_only_when_plan_enables_recovery() {
        let g = mesh::build(2, 2);
        let fs = FaultState::new(FaultPlan::default(), &g, Bits(192), &[2; 4]);
        assert!(fs.e2e.is_none());
        let plan = FaultPlan {
            recovery: Some(RecoveryPolicy::default()),
            ..FaultPlan::default()
        };
        let fs = FaultState::new(plan, &g, Bits(192), &[2; 4]);
        let e2e = fs.e2e.expect("enabled");
        assert_eq!(e2e.sources.len(), 4);
        assert_eq!(e2e.pending(), 0);
    }
}
